#include "dcnas/tensor/gemm_s8.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/thread_pool.hpp"
#include "dcnas/tensor/im2col.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define DCNAS_GEMM_S8_X86 1
#include <immintrin.h>
#endif

namespace dcnas {

namespace {

// Same BLIS blocking as the fp32 driver (gemm.cpp) but a taller 8x16 tile:
// eight rows amortize each packed-B load across eight dot-product chains,
// which measured fastest on AVX-512 VNNI (one zmm accumulator per row).
// Narrower ISAs sweep the tile in 8-column (AVX2) or 4-column (SSE2)
// strips. KC stays 256 (even, so K-pairs never straddle a block boundary).
constexpr std::int64_t kMr = 8;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kMc = 128;
static_assert(kMc % kMr == 0, "A blocks must hold whole micro-panels");
static_assert(kKc % 2 == 0, "K blocks must hold whole K-pairs");

inline std::int64_t round_up(std::int64_t x, std::int64_t q) {
  return (x + q - 1) / q * q;
}

// ---- Packing ---------------------------------------------------------------
// int8 sources are widened to int16 at pack time:
//   A panel:  ap[(i0+i)*kp + p]             = A(i0+i, pc + p)   (row-major)
//   B sliver: bp[js*kp + p2*(2*kNr) + j*2 + r] = B(pc + 2*p2 + r, js + j)
// where kp = kc rounded up to even. Only B needs the K-pair interleave the
// pmaddwd idiom wants — the micro-kernel *broadcasts* each A pair, and a
// row's K-pair is just two adjacent bytes, so row-major widened A already
// has pairs contiguous and the A pack stays a vectorizable widening copy.
// Row/column tails and the odd-K tail are zero-padded; zero is exact under
// symmetric quantization, and padded lanes only feed tile slots that are
// never copied out (same argument as the fp32 packers).

void pack_a_s8(const std::int8_t* a, std::int64_t lda, std::int64_t rows,
               std::int64_t kc, std::int16_t* dst) {
  const std::int64_t kp = round_up(kc, 2);
  const std::int64_t rows_round = round_up(rows, kMr);
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int8_t* src = a + i * lda;
    std::int16_t* d = dst + i * kp;
    for (std::int64_t p = 0; p < kc; ++p) d[p] = src[p];
    if (kp > kc) d[kc] = 0;
  }
  for (std::int64_t i = rows; i < rows_round; ++i) {
    std::memset(dst + i * kp, 0, static_cast<std::size_t>(kp) * 2);
  }
}

#if defined(DCNAS_GEMM_S8_X86)
/// Widens two 16-byte int8 rows to int16 and stores them K-pair interleaved
/// (r0[0], r1[0], r0[1], r1[1], ...) — one packed B sliver row.
inline void widen_interleave_16(const std::int8_t* r0, const std::int8_t* r1,
                                std::int16_t* dst) {
  const __m128i x0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0));
  const __m128i x1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1));
  const __m128i z = _mm_setzero_si128();
  const __m128i s0 = _mm_cmpgt_epi8(z, x0);  // sign masks for widening
  const __m128i s1 = _mm_cmpgt_epi8(z, x1);
  const __m128i a_lo = _mm_unpacklo_epi8(x0, s0);
  const __m128i a_hi = _mm_unpackhi_epi8(x0, s0);
  const __m128i b_lo = _mm_unpacklo_epi8(x1, s1);
  const __m128i b_hi = _mm_unpackhi_epi8(x1, s1);
  __m128i* d = reinterpret_cast<__m128i*>(dst);
  _mm_storeu_si128(d + 0, _mm_unpacklo_epi16(a_lo, b_lo));
  _mm_storeu_si128(d + 1, _mm_unpackhi_epi16(a_lo, b_lo));
  _mm_storeu_si128(d + 2, _mm_unpacklo_epi16(a_hi, b_hi));
  _mm_storeu_si128(d + 3, _mm_unpackhi_epi16(a_hi, b_hi));
}
#endif

void pack_b_s8_rowmajor(const std::int8_t* b, std::int64_t ldb,
                        std::int64_t kc, std::int64_t j0, std::int64_t j1,
                        std::int16_t* dst) {
  const std::int64_t kp = round_up(kc, 2);
  for (std::int64_t js = j0; js < j1; js += kNr) {
    std::int16_t* sliver = dst + js * kp;
    const std::int64_t jn = std::min(kNr, j1 - js);
#if defined(DCNAS_GEMM_S8_X86)
    if (jn == kNr) {
      std::int64_t p2 = 0;
      for (; 2 * p2 + 1 < kc; ++p2) {
        const std::int8_t* r0 = b + (2 * p2) * ldb + js;
        widen_interleave_16(r0, r0 + ldb, sliver + p2 * (2 * kNr));
      }
      if (2 * p2 < kc) {  // odd-K tail: second row of the pair is zero
        const std::int8_t* r0 = b + (2 * p2) * ldb + js;
        std::int16_t* row = sliver + p2 * (2 * kNr);
        for (std::int64_t j = 0; j < kNr; ++j) {
          row[j * 2 + 0] = static_cast<std::int16_t>(r0[j]);
          row[j * 2 + 1] = 0;
        }
      }
      continue;
    }
#endif
    for (std::int64_t p2 = 0; p2 < kp / 2; ++p2) {
      std::int16_t* row = sliver + p2 * (2 * kNr);
      for (std::int64_t r = 0; r < 2; ++r) {
        const std::int64_t p = 2 * p2 + r;
        if (p >= kc) {
          for (std::int64_t j = 0; j < kNr; ++j) row[j * 2 + r] = 0;
          continue;
        }
        const std::int8_t* src = b + p * ldb + js;
        for (std::int64_t j = 0; j < jn; ++j) {
          row[j * 2 + r] = static_cast<std::int16_t>(src[j]);
        }
        for (std::int64_t j = jn; j < kNr; ++j) row[j * 2 + r] = 0;
      }
    }
  }
}

/// B(p, j) = im2col(im_q)(p, j) synthesized in place from the quantized
/// image; out-of-bounds taps read q = 0 (exact: symmetric, zero-point 0).
void pack_b_s8_im2col(const std::int8_t* im, const Im2colSpec& spec,
                      std::int64_t pc, std::int64_t kc, std::int64_t j0,
                      std::int64_t j1, std::int16_t* dst) {
  const std::int64_t h = spec.height, w = spec.width, k = spec.kernel;
  const std::int64_t stride = spec.stride, pad = spec.padding;
  const std::int64_t out_w = spec.out_w();
  const std::int64_t kp = round_up(kc, 2);
  for (std::int64_t js = j0; js < j1; js += kNr) {
    std::int16_t* sliver = dst + js * kp;
    const std::int64_t jn = std::min(kNr, j1 - js);
    for (std::int64_t p2 = 0; p2 < kp / 2; ++p2) {
      std::int16_t* row = sliver + p2 * (2 * kNr);
      for (std::int64_t rr = 0; rr < 2; ++rr) {
        const std::int64_t p = 2 * p2 + rr;
        if (p >= kc) {
          for (std::int64_t j = 0; j < kNr; ++j) row[j * 2 + rr] = 0;
          continue;
        }
        const std::int64_t r = pc + p;
        const std::int64_t c = r / (k * k);
        const std::int64_t kh = (r / k) % k;
        const std::int64_t kw = r % k;
        const std::int8_t* im_c = im + c * h * w;
        std::int64_t oh = js / out_w;
        std::int64_t ow = js % out_w;
        for (std::int64_t j = 0; j < jn; ++j) {
          if (ow == out_w) {
            ow = 0;
            ++oh;
          }
          const std::int64_t ih = oh * stride - pad + kh;
          const std::int64_t iw = ow * stride - pad + kw;
          row[j * 2 + rr] = (ih >= 0 && ih < h && iw >= 0 && iw < w)
                                ? static_cast<std::int16_t>(im_c[ih * w + iw])
                                : std::int16_t{0};
          ++ow;
        }
        for (std::int64_t j = jn; j < kNr; ++j) row[j * 2 + rr] = 0;
      }
    }
  }
}

// ---- Micro-kernels ---------------------------------------------------------
// out(8x16 int32, leading dim ldo) += Ap · Bp over `pairs` K-pairs. Ap is a
// row-major widened micro-panel (row stride 2*pairs int16; the K-pair for
// row i is the two adjacent values at ap[i*2*pairs + 2*p2]). All variants
// compute the identical exact integer result; dispatch picks the fastest
// one the CPU supports at first use.

[[maybe_unused]] void micro_s8_scalar(
    std::int64_t pairs, const std::int16_t* __restrict ap,
    const std::int16_t* __restrict bp, std::int32_t* __restrict out,
    std::int64_t ldo, bool accumulate) {
  const std::int64_t akp = 2 * pairs;
  std::int32_t acc[kMr][kNr] = {};
  for (std::int64_t p2 = 0; p2 < pairs; ++p2) {
    const std::int16_t* b = bp + p2 * (2 * kNr);
    for (int i = 0; i < kMr; ++i) {
      const std::int32_t a0 = ap[i * akp + 2 * p2 + 0];
      const std::int32_t a1 = ap[i * akp + 2 * p2 + 1];
      for (int j = 0; j < kNr; ++j) {
        acc[i][j] += a0 * b[j * 2 + 0] + a1 * b[j * 2 + 1];
      }
    }
  }
  for (int i = 0; i < kMr; ++i) {
    for (int j = 0; j < kNr; ++j) {
      out[i * ldo + j] = accumulate ? out[i * ldo + j] + acc[i][j] : acc[i][j];
    }
  }
}

#if defined(DCNAS_GEMM_S8_X86)

inline std::int32_t load_pair(const std::int16_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// SSE2 baseline (part of the x86-64 ABI, no flags needed): one pmaddwd
/// covers 4 int32 lanes · 2 MACs each. The 8x16 tile would need 32 xmm
/// accumulators, so the kernel sweeps it in 4-column strips (8 xmm each);
/// packed A is L1-resident, making the extra passes nearly free.
void micro_s8_sse2(std::int64_t pairs, const std::int16_t* __restrict ap,
                   const std::int16_t* __restrict bp,
                   std::int32_t* __restrict out, std::int64_t ldo,
                   bool accumulate) {
  const std::int64_t akp = 2 * pairs;
  for (int q = 0; q < kNr / 4; ++q) {
    __m128i acc[kMr];
    for (int i = 0; i < kMr; ++i) acc[i] = _mm_setzero_si128();
    for (std::int64_t p2 = 0; p2 < pairs; ++p2) {
      const std::int16_t* brow = bp + p2 * (2 * kNr) + q * 8;
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow));
      const std::int16_t* apair = ap + 2 * p2;
      for (int i = 0; i < kMr; ++i) {
        const __m128i a = _mm_set1_epi32(load_pair(apair + i * akp));
        acc[i] = _mm_add_epi32(acc[i], _mm_madd_epi16(a, b));
      }
    }
    for (int i = 0; i < kMr; ++i) {
      __m128i* o = reinterpret_cast<__m128i*>(out + i * ldo + q * 4);
      _mm_storeu_si128(
          o, accumulate ? _mm_add_epi32(_mm_loadu_si128(o), acc[i]) : acc[i]);
    }
  }
}

#if defined(__GNUC__)
/// AVX2 variant compiled with a function-level target attribute so it exists
/// even in non-native builds; pick_micro() only selects it when cpuid says
/// the machine has AVX2. vpmaddwd: 8 int32 lanes · 2 MACs per instruction;
/// the tile is swept in two 8-column halves of 8 ymm accumulators each.
__attribute__((target("avx2"))) void micro_s8_avx2(
    std::int64_t pairs, const std::int16_t* __restrict ap,
    const std::int16_t* __restrict bp, std::int32_t* __restrict out,
    std::int64_t ldo, bool accumulate) {
  const std::int64_t akp = 2 * pairs;
  for (int h = 0; h < kNr / 8; ++h) {
    __m256i acc[kMr];
    for (int i = 0; i < kMr; ++i) acc[i] = _mm256_setzero_si256();
    for (std::int64_t p2 = 0; p2 < pairs; ++p2) {
      const std::int16_t* brow = bp + p2 * (2 * kNr) + h * 16;
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow));
      const std::int16_t* apair = ap + 2 * p2;
      for (int i = 0; i < kMr; ++i) {
        const __m256i a = _mm256_set1_epi32(load_pair(apair + i * akp));
        acc[i] = _mm256_add_epi32(acc[i], _mm256_madd_epi16(a, b));
      }
    }
    for (int i = 0; i < kMr; ++i) {
      __m256i* o = reinterpret_cast<__m256i*>(out + i * ldo + h * 8);
      _mm256_storeu_si256(
          o, accumulate ? _mm256_add_epi32(_mm256_loadu_si256(o), acc[i])
                        : acc[i]);
    }
  }
}

/// AVX-512 VNNI variant: vpdpwssd fuses the int16 pair multiply-add with
/// the int32 accumulate (2 MACs per lane, 16 lanes, one instruction). One
/// zmm accumulator per row gives 8 independent dependency chains sharing
/// each packed-B load — the fastest shape measured on this tile family.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void micro_s8_vnni(
    std::int64_t pairs, const std::int16_t* __restrict ap,
    const std::int16_t* __restrict bp, std::int32_t* __restrict out,
    std::int64_t ldo, bool accumulate) {
  const std::int64_t akp = 2 * pairs;
  __m512i acc[kMr];
  for (int i = 0; i < kMr; ++i) acc[i] = _mm512_setzero_si512();
  for (std::int64_t p2 = 0; p2 < pairs; ++p2) {
    const __m512i b = _mm512_loadu_si512(bp + p2 * (2 * kNr));
    const std::int16_t* apair = ap + 2 * p2;
    for (int i = 0; i < kMr; ++i) {
      acc[i] = _mm512_dpwssd_epi32(
          acc[i], _mm512_set1_epi32(load_pair(apair + i * akp)), b);
    }
  }
  for (int i = 0; i < kMr; ++i) {
    std::int32_t* o = out + i * ldo;
    _mm512_storeu_si512(
        o, accumulate ? _mm512_add_epi32(_mm512_loadu_si512(o), acc[i])
                      : acc[i]);
  }
}
#endif  // __GNUC__

#endif  // DCNAS_GEMM_S8_X86

using MicroS8Fn = void (*)(std::int64_t, const std::int16_t*,
                           const std::int16_t*, std::int32_t*, std::int64_t,
                           bool);

struct MicroS8 {
  MicroS8Fn fn;
  const char* name;
};

const MicroS8& micro_s8() {
  static const MicroS8 selected = [] {
#if defined(DCNAS_GEMM_S8_X86) && defined(__GNUC__)
    if (__builtin_cpu_supports("avx512vnni") &&
        __builtin_cpu_supports("avx512bw")) {
      return MicroS8{micro_s8_vnni, "avx512vnni"};
    }
    if (__builtin_cpu_supports("avx2")) return MicroS8{micro_s8_avx2, "avx2"};
#endif
#if defined(DCNAS_GEMM_S8_X86)
    return MicroS8{micro_s8_sse2, "sse2"};
#else
    return MicroS8{micro_s8_scalar, "scalar"};
#endif
  }();
  return selected;
}

// Per-thread packing scratch, mirroring the fp32 driver's ownership rules:
// the B panel and the int32 accumulator belong to the driver's calling
// thread (workers only write through their pointers); each worker packs A
// into its own buffer.
thread_local std::vector<std::int16_t> t_pack_a_s8;
thread_local std::vector<std::int16_t> t_pack_b_s8;
thread_local std::vector<std::int32_t> t_acc_s8;

/// Shared int8 driver: identical structure to the fp32 gemm_driver, but the
/// destination is an m x n int32 accumulator that persists across K-blocks
/// (requantization must see the complete exact sum). When the whole K
/// dimension fits in one K-block and an epilogue is supplied, the driver
/// instead requantizes each tile straight from L1 into the fp32 output and
/// never materializes the big accumulator (`acc` may then be null).
template <typename PackA, typename PackB>
void gemm_s8_driver(std::int64_t m, std::int64_t n, std::int64_t k,
                    const PackA& pack_a, const PackB& pack_b,
                    std::int32_t* acc, const QuantEpilogue* epi, float* c) {
  const bool fused = epi != nullptr;
  DCNAS_CHECK(fused ? (k <= kKc && c != nullptr) : acc != nullptr,
              "gemm_s8 driver destination misconfigured");
  const std::int64_t n_round = round_up(n, kNr);
  if (t_pack_b_s8.size() < static_cast<std::size_t>(kKc * n_round)) {
    t_pack_b_s8.resize(static_cast<std::size_t>(kKc * n_round));
  }
  std::vector<std::int16_t>& bp = t_pack_b_s8;
  const MicroS8Fn micro = micro_s8().fn;
  const std::int64_t m_blocks = (m + kMc - 1) / kMc;
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc = std::min(kKc, k - pc);
    // The first K-block overwrites the accumulator (no memset, no
    // read-modify-write); later blocks accumulate on top.
    const bool accumulate = pc > 0;
    const std::int64_t kp = round_up(kc, 2);
    const std::int64_t pairs = kp / 2;
    const std::int64_t n_slivers = n_round / kNr;
    parallel_for_chunked(0, n_slivers, [&](std::int64_t lo, std::int64_t hi) {
      pack_b(pc, kc, lo * kNr, std::min(hi * kNr, n), bp.data());
    });
    parallel_for_chunked(0, m_blocks, [&](std::int64_t blo, std::int64_t bhi) {
      if (t_pack_a_s8.size() < static_cast<std::size_t>(kMc * kKc)) {
        t_pack_a_s8.resize(static_cast<std::size_t>(kMc * kKc));
      }
      std::int16_t* ap = t_pack_a_s8.data();
      std::int32_t tile[kMr * kNr];
      for (std::int64_t blk = blo; blk < bhi; ++blk) {
        const std::int64_t ic = blk * kMc;
        const std::int64_t mc = std::min(kMc, m - ic);
        pack_a(pc, kc, ic, mc, ap);
        // Sliver-major sweep: the 16-column packed-B sliver (kKc*kNr int16 =
        // 8 KB) stays L1-resident across every micro-panel while the packed
        // A block streams sequentially — measurably faster than the
        // panel-major order on the int16 operands.
        for (std::int64_t js = 0; js < n; js += kNr) {
          const std::int64_t jn = std::min(kNr, n - js);
          for (std::int64_t i0 = 0; i0 < mc; i0 += kMr) {
            const std::int64_t mi = std::min(kMr, mc - i0);
            if (fused) {
              micro(pairs, ap + i0 * kp, bp.data() + js * kp, tile, kNr,
                    /*accumulate=*/false);
              for (std::int64_t i = 0; i < mi; ++i) {
                const std::int64_t row = ic + i0 + i;
                const float s = epi->scale[row];
                const float b = epi->bias ? epi->bias[row] : 0.0f;
                const std::int32_t* trow = tile + i * kNr;
                float* crow = c + row * n + js;
                if (epi->relu) {
                  for (std::int64_t j = 0; j < jn; ++j) {
                    crow[j] = std::max(
                        static_cast<float>(trow[j]) * s + b, 0.0f);
                  }
                } else {
                  for (std::int64_t j = 0; j < jn; ++j) {
                    crow[j] = static_cast<float>(trow[j]) * s + b;
                  }
                }
              }
            } else if (mi == kMr && jn == kNr) {
              micro(pairs, ap + i0 * kp, bp.data() + js * kp,
                    acc + (ic + i0) * n + js, n, accumulate);
            } else {
              micro(pairs, ap + i0 * kp, bp.data() + js * kp, tile, kNr,
                    /*accumulate=*/false);
              for (std::int64_t i = 0; i < mi; ++i) {
                std::int32_t* crow = acc + (ic + i0 + i) * n + js;
                if (accumulate) {
                  for (std::int64_t j = 0; j < jn; ++j) {
                    crow[j] += tile[i * kNr + j];
                  }
                } else {
                  for (std::int64_t j = 0; j < jn; ++j) {
                    crow[j] = tile[i * kNr + j];
                  }
                }
              }
            }
          }
        }
      }
    });
  }
}

/// Fused requantization: fp32 C from the exact int32 accumulator.
void requantize_c(std::int64_t m, std::int64_t n, const std::int32_t* acc,
                  const QuantEpilogue& epi, float* c) {
  parallel_for_chunked(0, m, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float s = epi.scale[i];
      const float b = epi.bias ? epi.bias[i] : 0.0f;
      const std::int32_t* arow = acc + i * n;
      float* crow = c + i * n;
      if (epi.relu) {
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] = std::max(static_cast<float>(arow[j]) * s + b, 0.0f);
        }
      } else {
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] = static_cast<float>(arow[j]) * s + b;
        }
      }
    }
  });
}

void check_dims_s8(std::int64_t m, std::int64_t n, std::int64_t k) {
  DCNAS_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm_s8 dimensions must be >= 0");
  DCNAS_CHECK(k <= kGemmS8MaxK,
              "gemm_s8 K dimension too large for exact int32 accumulation");
}

/// The returned buffer is NOT zeroed: the driver's first K-block runs the
/// micro-kernel in overwrite mode, so every element of the m x n region is
/// stored before it is ever read.
std::int32_t* acquire_acc(std::int64_t m, std::int64_t n) {
  const std::size_t total = static_cast<std::size_t>(m * n);
  if (t_acc_s8.size() < total) t_acc_s8.resize(total);
  return t_acc_s8.data();
}

}  // namespace

const char* gemm_s8_kernel_name() { return micro_s8().name; }

void gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, const std::int8_t* b,
             const QuantEpilogue& epi, float* c) {
  check_dims_s8(m, n, k);
  DCNAS_CHECK(epi.scale != nullptr, "gemm_s8 requires per-row scales");
  if (m == 0 || n == 0) return;
  const auto pack_a = [&](std::int64_t pc, std::int64_t kc, std::int64_t ic,
                          std::int64_t mc, std::int16_t* dst) {
    pack_a_s8(a + ic * k + pc, k, mc, kc, dst);
  };
  const auto pack_b = [&](std::int64_t pc, std::int64_t kc, std::int64_t j0,
                          std::int64_t j1, std::int16_t* dst) {
    pack_b_s8_rowmajor(b + pc * n, n, kc, j0, j1, dst);
  };
  if (k <= kKc) {
    gemm_s8_driver(m, n, k, pack_a, pack_b, nullptr, &epi, c);
    return;
  }
  std::int32_t* acc = acquire_acc(m, n);
  gemm_s8_driver(m, n, k, pack_a, pack_b, acc, nullptr, nullptr);
  requantize_c(m, n, acc, epi, c);
}

void gemm_s8_i32(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b, std::int32_t* c) {
  check_dims_s8(m, n, k);
  if (m == 0 || n == 0) return;
  gemm_s8_driver(
      m, n, k,
      [&](std::int64_t pc, std::int64_t kc, std::int64_t ic, std::int64_t mc,
          std::int16_t* dst) { pack_a_s8(a + ic * k + pc, k, mc, kc, dst); },
      [&](std::int64_t pc, std::int64_t kc, std::int64_t j0, std::int64_t j1,
          std::int16_t* dst) {
        pack_b_s8_rowmajor(b + pc * n, n, kc, j0, j1, dst);
      },
      c, nullptr, nullptr);
}

void gemm_s8_im2col(std::int64_t m, const std::int8_t* a,
                    const std::int8_t* im_q, const Im2colSpec& spec,
                    const QuantEpilogue& epi, float* c) {
  DCNAS_CHECK(m >= 0 && spec.channels > 0, "gemm_s8_im2col bad dimensions");
  DCNAS_CHECK(epi.scale != nullptr, "gemm_s8_im2col requires per-row scales");
  const std::int64_t k = spec.channels * spec.kernel * spec.kernel;
  const std::int64_t n = spec.out_h() * spec.out_w();
  check_dims_s8(m, n, k);
  if (m == 0 || n == 0) return;
  const auto pack_a = [&](std::int64_t pc, std::int64_t kc, std::int64_t ic,
                          std::int64_t mc, std::int16_t* dst) {
    pack_a_s8(a + ic * k + pc, k, mc, kc, dst);
  };
  const auto pack_b = [&](std::int64_t pc, std::int64_t kc, std::int64_t j0,
                          std::int64_t j1, std::int16_t* dst) {
    pack_b_s8_im2col(im_q, spec, pc, kc, j0, j1, dst);
  };
  if (k <= kKc) {
    gemm_s8_driver(m, n, k, pack_a, pack_b, nullptr, &epi, c);
    return;
  }
  std::int32_t* acc = acquire_acc(m, n);
  gemm_s8_driver(m, n, k, pack_a, pack_b, acc, nullptr, nullptr);
  requantize_c(m, n, acc, epi, c);
}

}  // namespace dcnas
