#include "dcnas/tensor/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dcnas {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    DCNAS_CHECK(d >= 0, "negative dimension in shape " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, float value) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), value);
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::from_values(Shape shape, std::vector<float> values) {
  DCNAS_CHECK(shape_numel(shape) == static_cast<std::int64_t>(values.size()),
              "value count does not match shape " + shape_to_string(shape));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DCNAS_CHECK(shape_numel(new_shape) == numel(),
              "reshape numel mismatch: " + shape_to_string(shape_) + " -> " +
                  shape_to_string(new_shape));
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::add_(const Tensor& other) {
  DCNAS_CHECK(same_shape(other), "add_: shape mismatch " +
                                     shape_to_string(shape_) + " vs " +
                                     shape_to_string(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  DCNAS_CHECK(same_shape(other), "add_scaled_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Tensor Tensor::added(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const {
  if (data_.empty()) return 0.0;
  return sum() / static_cast<double>(data_.size());
}

float Tensor::max_value() const {
  DCNAS_CHECK(!data_.empty(), "max_value of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace dcnas
