#include "dcnas/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dcnas/common/thread_pool.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas {

Tensor maxpool2d_forward(const Tensor& input, std::int64_t kernel,
                         std::int64_t stride, std::int64_t padding,
                         std::vector<std::int64_t>* argmax) {
  DCNAS_CHECK(input.ndim() == 4, "maxpool2d expects an NCHW tensor");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = conv_out_size(h, kernel, stride, padding);
  const std::int64_t ow = conv_out_size(w, kernel, stride, padding);
  Tensor out({n, c, oh, ow});
  if (argmax) argmax->assign(static_cast<std::size_t>(out.numel()), -1);

  const float* in = input.data();
  float* o = out.data();
  parallel_for_chunked(0, n * c, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* plane = in + nc * h * w;
      float* out_plane = o + nc * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = y * stride - padding + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = x * stride - padding + kx;
              if (ix < 0 || ix >= w) continue;
              const std::int64_t idx = iy * w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = nc * h * w + idx;
              }
            }
          }
          // A window fully inside padding would have no candidates; the
          // geometry checks in conv_out_size make that impossible for
          // padding < kernel, which Conv/Pool layer constructors enforce.
          DCNAS_ASSERT(best_idx >= 0, "empty pooling window");
          out_plane[y * ow + x] = best;
          if (argmax) (*argmax)[static_cast<std::size_t>(nc * oh * ow + y * ow + x)] = best_idx;
        }
      }
    }
  });
  return out;
}

Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax) {
  DCNAS_CHECK(argmax.size() == static_cast<std::size_t>(grad_out.numel()),
              "argmax size mismatch in maxpool backward");
  Tensor grad_in(input_shape);
  float* gi = grad_in.data();
  const float* go = grad_out.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    gi[argmax[i]] += go[i];
  }
  return grad_in;
}

Tensor global_avgpool_forward(const Tensor& input) {
  DCNAS_CHECK(input.ndim() == 4, "global_avgpool expects an NCHW tensor");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* in = input.data();
  float* o = out.data();
  parallel_for_chunked(0, n * c, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* plane = in + nc * h * w;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < h * w; ++i) acc += plane[i];
      o[nc] = acc * inv;
    }
  });
  return out;
}

Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape) {
  DCNAS_CHECK(input_shape.size() == 4, "global_avgpool backward needs NCHW");
  const std::int64_t h = input_shape[2], w = input_shape[3];
  Tensor grad_in(input_shape);
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* go = grad_out.data();
  float* gi = grad_in.data();
  const std::int64_t planes = input_shape[0] * input_shape[1];
  parallel_for_chunked(0, planes, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float g = go[nc] * inv;
      float* plane = gi + nc * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) plane[i] = g;
    }
  });
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  DCNAS_CHECK(logits.ndim() == 2, "softmax_rows expects a 2-D tensor");
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < cols; ++j) mx = std::max(mx, in[j]);
    float denom = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) {
      o[j] = std::exp(in[j] - mx);
      denom += o[j];
    }
    const float inv = 1.0f / denom;
    for (std::int64_t j = 0; j < cols; ++j) o[j] *= inv;
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& t) {
  DCNAS_CHECK(t.ndim() == 2, "argmax_rows expects a 2-D tensor");
  const std::int64_t rows = t.dim(0), cols = t.dim(1);
  DCNAS_CHECK(cols > 0, "argmax_rows needs at least one column");
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = t.data() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

void relu_inplace(Tensor& t, Tensor* mask) {
  if (mask) *mask = Tensor(t.shape());
  float* d = t.data();
  float* m = mask ? mask->data() : nullptr;
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (d[i] > 0.0f) {
      if (m) m[i] = 1.0f;
    } else {
      d[i] = 0.0f;
    }
  }
}

}  // namespace dcnas
