#pragma once
/// \file ops.hpp
/// \brief Low-level tensor kernels shared by the nn layers: pooling,
/// row-wise softmax, reductions. These are the primitives the latency
/// simulator's kernel taxonomy mirrors.

#include <cstdint>
#include <vector>

#include "dcnas/tensor/tensor.hpp"

namespace dcnas {

/// Max pooling over an NCHW tensor. Writes the flat input index of each
/// maximum into \p argmax (same shape as the output) for the backward pass.
Tensor maxpool2d_forward(const Tensor& input, std::int64_t kernel,
                         std::int64_t stride, std::int64_t padding,
                         std::vector<std::int64_t>* argmax);

/// Scatter of output gradients to input positions recorded in \p argmax.
Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax);

/// Global average pooling: (N,C,H,W) -> (N,C).
Tensor global_avgpool_forward(const Tensor& input);

/// Backward of global average pooling: spreads grad/(H·W) over the map.
Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape);

/// Row-wise softmax of a 2-D tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Index of the maximum in each row of a 2-D tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& t);

/// In-place ReLU; returns a mask tensor (1 where input > 0) when
/// \p mask != nullptr for use in the backward pass.
void relu_inplace(Tensor& t, Tensor* mask);

}  // namespace dcnas
