#pragma once
/// \file im2col.hpp
/// \brief Image-to-column lowering so convolution becomes one GEMM.
///
/// For one image of shape (C, H, W) and a k×k kernel with stride s and
/// padding p, im2col produces a matrix of shape (C·k·k, H_out·W_out) whose
/// columns are the unrolled receptive fields. Convolution is then
/// W(OC × C·k·k) · col, and the backward pass uses col2im to scatter
/// gradients back.

#include <cstdint>

namespace dcnas {

/// Output spatial size for a convolution/pooling dimension.
/// Throws InvalidArgument when the configuration yields a non-positive size.
std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding);

/// Expands one image (C,H,W at \p im) into \p col of shape
/// (C·k·k) x (out_h·out_w). Zero-padding is materialized as zeros.
void im2col(const float* im, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* col);

/// Inverse scatter-add of im2col: accumulates \p col back into \p im
/// (which the caller must zero beforehand).
void col2im(const float* col, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* im);

}  // namespace dcnas
