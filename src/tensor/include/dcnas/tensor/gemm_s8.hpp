#pragma once
/// \file gemm_s8.hpp
/// \brief Packed int8 GEMM with int32 accumulation and a fused
/// requantize-to-fp32 epilogue — the quantized twin of gemm.hpp.
///
/// The int8 family reuses the fp32 driver's BLIS blocking (pack A panels and
/// B slivers per K-block, sweep register-tiled micro-kernels over M-blocks)
/// but changes the packed element type: int8 operands are widened to int16
/// at pack time and stored *K-pair interleaved*, so the micro-kernel maps
/// each accumulator update onto the x86 `pmaddwd` idiom (two int16×int16
/// products summed into one int32 lane — 2 MACs per lane per instruction).
/// Portable scalar and SSE2 paths are always built; AVX2 and AVX-512 VNNI
/// variants are compiled with function-level target attributes and selected
/// at runtime (`gemm_s8_kernel_name()` reports the winner), so the kernel
/// is fast even in builds without -march=native. The VNNI tier replaces the
/// pmaddwd+paddd pair with `vpdpwssd` (multiply-accumulate in one op).
///
/// Numeric contract:
///  - Accumulation is exact int32 arithmetic: results are bitwise identical
///    for any thread count, K-block order, or SIMD variant.
///  - The caller must keep k <= kGemmS8MaxK (checked); beyond that the
///    int32 accumulator could overflow at worst-case |q| = 127.
///  - The epilogue converts each int32 accumulator to fp32 as
///    out[i][j] = acc[i][j] * scale[i] (+ bias[i]) with optional ReLU —
///    exactly the per-out-channel requantization QUANTIZATION.md specifies.

#include <cstdint>

#include "dcnas/tensor/gemm.hpp"

namespace dcnas {

/// Largest supported K for int8 GEMM: 127² · k must fit int32.
inline constexpr std::int64_t kGemmS8MaxK = 133000;

/// Per-row requantization applied while writing C (fused, no second pass).
struct QuantEpilogue {
  const float* scale = nullptr;  ///< per-row scale, size M (required)
  const float* bias = nullptr;   ///< optional per-row fp32 bias, size M
  bool relu = false;             ///< clamp at zero after bias
};

/// C(MxN) fp32 = requantize(A_q(MxK) · B_q(KxN)), A_q/B_q dense row-major
/// int8. C is overwritten (no beta accumulation — quantized steps always
/// produce fresh activations).
void gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, const std::int8_t* b,
             const QuantEpilogue& epi, float* c);

/// Raw-accumulator variant for differential tests: C(MxN) int32 =
/// A_q · B_q exactly, no epilogue.
void gemm_s8_i32(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b, std::int32_t* c);

/// Fused quantized convolution forward: C(M x OH·OW) fp32 =
/// requantize(A_q(M x C·K·K) · im2col(im_q)) where \p im_q points at one
/// sample's *quantized* C x H x W planes. Zero padding synthesizes q = 0,
/// which is exact under symmetric quantization (zero-point 0).
void gemm_s8_im2col(std::int64_t m, const std::int8_t* a,
                    const std::int8_t* im_q, const Im2colSpec& spec,
                    const QuantEpilogue& epi, float* c);

/// Which micro-kernel the runtime dispatcher selected ("avx2", "sse2",
/// "scalar") — surfaced in benchmarks and logs.
const char* gemm_s8_kernel_name();

}  // namespace dcnas
