#pragma once
/// \file tensor.hpp
/// \brief Dense row-major fp32 tensor, the value type of the training stack.
///
/// Layout is NCHW for 4-D tensors (the only layout the CNN layers use).
/// Tensors own their storage in a contiguous std::vector<float>; copies are
/// deep, moves are cheap. All indexing is bounds-checked in debug paths via
/// DCNAS_ASSERT and unchecked in the flat data() hot paths.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"

namespace dcnas {

/// Shape of a tensor; up to 4 dimensions are used in practice.
using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
 public:
  /// Empty 0-d tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor filled with \p value.
  Tensor(Shape shape, float value);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// I.i.d. N(mean, stddev) entries drawn from \p rng.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// Uniform [lo, hi) entries drawn from \p rng.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);
  /// 1-D tensor from an explicit list (test convenience).
  static Tensor from_values(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const {
    DCNAS_ASSERT(i < shape_.size(), "tensor dim index out of range");
    return shape_[i];
  }
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::int64_t i) {
    DCNAS_ASSERT(i >= 0 && i < numel(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    DCNAS_ASSERT(i >= 0 && i < numel(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// 4-D NCHW accessors.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const {
    return data_[static_cast<std::size_t>(offset4(n, c, h, w))];
  }
  /// 2-D (rows, cols) accessors.
  float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(offset2(r, c))];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(offset2(r, c))];
  }

  /// Returns a tensor with the same data and a new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place operations.
  Tensor& add_(const Tensor& other);
  Tensor& add_scaled_(const Tensor& other, float alpha);  ///< this += α·other
  Tensor& mul_(float scalar);

  /// Elementwise out-of-place helpers.
  Tensor added(const Tensor& other) const;

  /// Sum / mean over all elements.
  double sum() const;
  double mean() const;
  /// Max element; requires non-empty.
  float max_value() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::int64_t offset4(std::int64_t n, std::int64_t c, std::int64_t h,
                       std::int64_t w) const {
    DCNAS_ASSERT(shape_.size() == 4, "at(n,c,h,w) requires a 4-D tensor");
    DCNAS_ASSERT(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                     h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3],
                 "NCHW index out of range");
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }
  std::int64_t offset2(std::int64_t r, std::int64_t c) const {
    DCNAS_ASSERT(shape_.size() == 2, "at(r,c) requires a 2-D tensor");
    DCNAS_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
                 "2-D index out of range");
    return r * shape_[1] + c;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dcnas
