#pragma once
/// \file gemm.hpp
/// \brief Packed, register-blocked, thread-parallel single-precision GEMM.
///
/// This GEMM is the computational heart of the training stack: convolution
/// lowers to (possibly fused) im2col + GEMM, and Linear layers call it
/// directly. All variants share one BLIS-style driver: A and B are packed
/// into contiguous cache-sized panels, a 4x16 register-tiled micro-kernel
/// (written so the compiler auto-vectorizes it; build with -O3 and
/// DCNAS_NATIVE=ON for FMA/AVX code) produces each C tile, and row-panel
/// blocks are distributed across the global thread pool.
///
/// Numeric contract:
///  - No element-level zero short-circuits: a zero in A multiplied by a
///    NaN/Inf in B yields NaN, exactly as in a naive triple loop, so
///    corrupted activations propagate instead of being silently swallowed.
///  - alpha == 0 skips the product entirely (C = beta*C), matching BLAS.
///  - Results are bitwise deterministic for given shapes and inputs,
///    independent of thread count: each C element is accumulated by exactly
///    one micro-kernel chain in a fixed K-block order.

#include <cstdint>

#include "dcnas/tensor/tensor.hpp"

namespace dcnas {

/// C(MxN) = alpha * A(MxK) * B(KxN) + beta * C.
/// A, B, C are dense row-major buffers (no aliasing between C and A/B).
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// C(MxN) = A(MxK) * B^T (N x K stored row-major) — used in backward passes
/// where one operand is naturally transposed.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b_t, float beta, float* c);

/// C(MxN) = A^T (K x M stored row-major) * B(KxN).
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a_t, const float* b, float beta, float* c);

/// Geometry of a virtual im2col operand for the fused convolution GEMM.
struct Im2colSpec {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  std::int64_t out_h() const;
  std::int64_t out_w() const;
};

/// Fused convolution forward: C(M x OH*OW) = alpha * A(M x C*K*K) *
/// im2col(im) + beta * C, where the column matrix is never materialized —
/// B slivers are packed straight from the CHW image (zero padding
/// synthesized in place). \p im points at one sample's C x H x W planes.
void gemm_im2col(std::int64_t m, float alpha, const float* a, const float* im,
                 const Im2colSpec& spec, float beta, float* c);

/// Tensor-level convenience: returns A·B for 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace dcnas
