#pragma once
/// \file gemm.hpp
/// \brief Blocked, thread-parallel single-precision matrix multiplication.
///
/// This GEMM is the computational heart of the training stack: convolution
/// lowers to im2col + GEMM, and Linear layers call it directly. The kernel is
/// a cache-blocked ikj loop with the inner j-loop written for
/// auto-vectorization; rows are distributed across the global thread pool.

#include <cstdint>

#include "dcnas/tensor/tensor.hpp"

namespace dcnas {

/// C(MxN) = alpha * A(MxK) * B(KxN) + beta * C.
/// A, B, C are dense row-major buffers (no aliasing between C and A/B).
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// C(MxN) = A(MxK) * B^T (N x K stored row-major) — used in backward passes
/// where one operand is naturally transposed.
void gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b_t, float beta, float* c);

/// C(MxN) = A^T (K x M stored row-major) * B(KxN).
void gemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a_t, const float* b, float beta, float* c);

/// Tensor-level convenience: returns A·B for 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace dcnas
