#!/usr/bin/env bash
# Docs gate, run by CI and registered as the `docs.check` ctest:
#   1. every relative markdown link in the repo's *.md files resolves to an
#      existing file/directory;
#   2. every subsystem under src/ is described in both DESIGN.md (as
#      `src/<name>`) and README.md (as `<name>/`);
#   3. diagnostic rule ids stay in sync with the docs, both directions:
#      every id declared in analysis/diagnostic.hpp is documented in
#      DESIGN.md or QUANTIZATION.md, and every backticked rule-shaped
#      token those docs use is a real declared id (catches typos and
#      stale ids left behind by renames);
#   4. README.md perf claims are backed by the checked-in bench records:
#      the kernel-performance section cites BENCH_kernels.json, and every
#      `N.NN×` speedup quoted in README.md prefix-matches a "speedup"
#      value in a checked-in BENCH_*.json.
#
# Usage: check_docs.sh [repo-root]   (defaults to the script's parent dir)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2
failures=0

fail() {
  echo "check_docs: $*" >&2
  failures=$((failures + 1))
}

# --- 1. markdown link targets -------------------------------------------
# Extract inline [text](target) links; skip absolute URLs, mailto, and
# pure-anchor links. Anchored file links (FILE.md#section) check FILE only.
while IFS=: read -r file target; do
  case "$target" in
    http://*|https://*|mailto:*|'#'*) continue ;;
  esac
  path="${target%%#*}"
  [ -z "$path" ] && continue
  dir=$(dirname "$file")
  if [ ! -e "$path" ] && [ ! -e "$dir/$path" ]; then
    fail "$file: broken link -> $target"
  fi
done < <(find . -name '*.md' -not -path './build*/*' -print0 |
         xargs -0 grep -oH '\[[^][]*\]([^()[:space:]]*)' |
         sed -E 's/^([^:]+):\[[^][]*\]\(([^()]*)\)$/\1:\2/')

# --- 2. every src subsystem is documented --------------------------------
for dir in src/*/; do
  name=$(basename "$dir")
  if ! grep -q "src/$name" DESIGN.md; then
    fail "DESIGN.md does not describe src/$name"
  fi
  if ! grep -q "$name/" README.md; then
    fail "README.md does not mention $name/"
  fi
done

# --- 3. diagnostic rule ids <-> docs, both directions --------------------
diag=src/analysis/include/dcnas/analysis/diagnostic.hpp
rule_ids=$(sed -nE 's/.*constexpr const char\* k[A-Za-z0-9]+ = "([a-z.-]+)";.*/\1/p' "$diag")
if [ -z "$rule_ids" ]; then
  fail "no rule ids extracted from $diag (pattern drift?)"
fi
for id in $rule_ids; do
  if ! grep -q "\`$id\`" DESIGN.md QUANTIZATION.md; then
    fail "rule id $id ($diag) is documented in neither DESIGN.md nor QUANTIZATION.md"
  fi
done
# Reverse: backticked one-dot tokens in a rule namespace must be declared.
# (Metric/span names use >= two dots, so they never match this shape.)
prefixes=$(printf '%s\n' "$rule_ids" | cut -d. -f1 | sort -u | paste -sd'|' -)
while read -r tok; do
  if ! printf '%s\n' "$rule_ids" | grep -qx "$tok"; then
    fail "docs cite rule id $tok, which $diag does not declare"
  fi
done < <(grep -ohE '`[a-z-]+\.[a-z-]+`' DESIGN.md QUANTIZATION.md |
         tr -d '`' | grep -E "^($prefixes)\." | sort -u)

# --- 4. README perf numbers cite checked-in bench records ----------------
if ! grep -q '`BENCH_kernels.json`' README.md; then
  fail "README.md kernel-performance section does not cite BENCH_kernels.json"
fi
if [ ! -f BENCH_kernels.json ]; then
  fail "BENCH_kernels.json is not checked in at the repo root"
fi
while read -r num; do
  n="${num%×}"
  if ! grep -q "\"speedup\": $n" BENCH_*.json 2>/dev/null; then
    fail "README.md quotes speedup $num not backed by any checked-in BENCH_*.json"
  fi
done < <(grep -oE '[0-9]+\.[0-9]+×' README.md | sort -u)

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures problem(s) found" >&2
  exit 1
fi
echo "check_docs: OK (links resolve, subsystems documented, rule ids in sync, perf numbers backed by BENCH_*.json)"
