#!/usr/bin/env bash
# Docs gate, run by CI and registered as the `docs.check` ctest:
#   1. every relative markdown link in the repo's *.md files resolves to an
#      existing file/directory;
#   2. every subsystem under src/ is described in both DESIGN.md (as
#      `src/<name>`) and README.md (as `<name>/`).
#
# Usage: check_docs.sh [repo-root]   (defaults to the script's parent dir)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2
failures=0

fail() {
  echo "check_docs: $*" >&2
  failures=$((failures + 1))
}

# --- 1. markdown link targets -------------------------------------------
# Extract inline [text](target) links; skip absolute URLs, mailto, and
# pure-anchor links. Anchored file links (FILE.md#section) check FILE only.
while IFS=: read -r file target; do
  case "$target" in
    http://*|https://*|mailto:*|'#'*) continue ;;
  esac
  path="${target%%#*}"
  [ -z "$path" ] && continue
  dir=$(dirname "$file")
  if [ ! -e "$path" ] && [ ! -e "$dir/$path" ]; then
    fail "$file: broken link -> $target"
  fi
done < <(find . -name '*.md' -not -path './build*/*' -print0 |
         xargs -0 grep -oH '\[[^][]*\]([^()[:space:]]*)' |
         sed -E 's/^([^:]+):\[[^][]*\]\(([^()]*)\)$/\1:\2/')

# --- 2. every src subsystem is documented --------------------------------
for dir in src/*/; do
  name=$(basename "$dir")
  if ! grep -q "src/$name" DESIGN.md; then
    fail "DESIGN.md does not describe src/$name"
  fi
  if ! grep -q "$name/" README.md; then
    fail "README.md does not mention $name/"
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures problem(s) found" >&2
  exit 1
fi
echo "check_docs: OK (links resolve, all src/ subsystems documented)"
