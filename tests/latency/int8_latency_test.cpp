#include <gtest/gtest.h>

#include <cstring>

#include "dcnas/latency/features.hpp"
#include "dcnas/latency/persistence.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/latency/simulator.hpp"

namespace dcnas::latency {
namespace {

using graph::FusedKernel;
using graph::KernelKind;
using graph::Precision;

FusedKernel conv_kernel() {
  Rng rng(41);
  return sample_kernel(KernelKind::kConvBnRelu, rng);
}

TEST(Int8SimulatorTest, EveryZooDeviceHasAnInt8Roof) {
  for (const auto& d : edge_device_zoo()) {
    EXPECT_GT(d.int8_peak_gops, d.peak_gflops) << d.name;
  }
}

TEST(Int8SimulatorTest, QuantizedConvIsFasterOnInt8Devices) {
  Rng rng(3);
  for (const auto& d : edge_device_zoo()) {
    int faster = 0, total = 0;
    for (int i = 0; i < 40; ++i) {
      FusedKernel k = sample_kernel(KernelKind::kConvBnRelu, rng);
      const double fp32_ms = simulate_kernel_ms(d, k);
      k.precision = Precision::kInt8;
      const double int8_ms = simulate_kernel_ms(d, k);
      ++total;
      if (int8_ms < fp32_ms) ++faster;
    }
    // Not every kernel speeds up (memory-bound ones only shed weight
    // traffic; 3x3 s1 loses Winograd), but the clear majority must.
    EXPECT_GT(faster, total * 2 / 3) << d.name;
  }
}

TEST(Int8SimulatorTest, Fp32LatencyIsUnchangedByThePrecisionAxis) {
  // Regression pin: fp32 kernels must simulate bitwise as before the axis
  // existed — the jitter key, roofs and Winograd factor are untouched.
  const DeviceSpec& d = device_by_name("cortexA76cpu");
  FusedKernel k = conv_kernel();
  ASSERT_EQ(k.precision, Precision::kFp32);
  const double a = simulate_kernel_ms(d, k);
  DeviceSpec no_int8 = d;
  no_int8.int8_peak_gops = 0.0;
  EXPECT_EQ(a, simulate_kernel_ms(no_int8, k));
}

TEST(Int8SimulatorTest, NoFastPathDeviceRunsInt8AtFp32ComputeRoof) {
  DeviceSpec d = device_by_name("adreno640gpu");
  d.int8_peak_gops = 0.0;
  FusedKernel k = conv_kernel();
  // Force a compute-bound non-Winograd kernel so the (smaller) int8 weight
  // traffic cannot show up in the max(compute, memory) roofline.
  k.attrs.kernel = 5;
  k.flops = 4'000'000'000;
  const double fp32_ms = simulate_kernel_ms(d, k);
  k.precision = Precision::kInt8;
  const double int8_ms = simulate_kernel_ms(d, k);
  // Same roof, same jitter key (the int8 jitter perturbation only applies
  // on a real fast path); only weight traffic differs — and for a
  // compute-bound conv that leaves latency identical.
  EXPECT_EQ(int8_ms, fp32_ms);
}

TEST(Int8SimulatorTest, WinogradDoesNotApplyToInt8) {
  const DeviceSpec& d = device_by_name("myriadvpu");
  Rng rng(19);
  FusedKernel k = sample_kernel(KernelKind::kConv, rng);
  k.attrs.kernel = 3;
  k.attrs.stride = 1;
  k.flops = 8'000'000'000;  // compute-bound, so the roofs decide
  k.precision = Precision::kInt8;
  FusedKernel f = k;
  f.precision = Precision::kFp32;
  // fp32 keeps Winograd (0.45x on the 55 GFLOP/s roof), int8 runs direct
  // on the 220 GOPS roof: the speedup is 4 * 0.45 = 1.8x, NOT the naked 4x
  // roof ratio — if Winograd wrongly stacked onto int8 this ratio would be
  // ~4 and the upper bound fails.
  const double ratio = simulate_kernel_ms(d, f) / simulate_kernel_ms(d, k);
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 2.5);
}

const LatencyPredictor& trained_int8_predictor() {
  static const LatencyPredictor predictor = [] {
    LatencyPredictor p(device_by_name("cortexA76cpu"));
    PredictorTrainOptions opt;
    opt.samples_per_kind = 200;
    opt.forest.num_trees = 6;
    p.train(opt);
    return p;
  }();
  return predictor;
}

TEST(Int8PredictorTest, TrainsConvForestsForInt8Devices) {
  const auto& p = trained_int8_predictor();
  EXPECT_EQ(p.int8_forests().size(), 4u);
  for (const KernelKind kind : {KernelKind::kConvBnRelu, KernelKind::kConvBn,
                                KernelKind::kConvRelu, KernelKind::kConv}) {
    EXPECT_EQ(p.int8_forests().count(kind), 1u);
  }
}

TEST(Int8PredictorTest, SkipsInt8ForestsWithoutFastPath) {
  DeviceSpec d = device_by_name("cortexA76cpu");
  d.int8_peak_gops = 0.0;
  LatencyPredictor p(d);
  PredictorTrainOptions opt;
  opt.samples_per_kind = 50;
  opt.forest.num_trees = 2;
  p.train(opt);
  EXPECT_TRUE(p.int8_forests().empty());
}

TEST(Int8PredictorTest, TracksSimulatedInt8LatencyWithin10Pct) {
  const auto& p = trained_int8_predictor();
  Rng rng(77);
  int hits = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    FusedKernel k = sample_kernel(KernelKind::kConvBnRelu, rng);
    k.precision = Precision::kInt8;
    const double truth = simulate_kernel_ms(p.device(), k);
    const double pred = p.predict_kernel_ms(k);
    ++total;
    if (std::abs(pred - truth) <= 0.10 * truth) ++hits;
  }
  // Same bar the fp32 predictors clear in Table 2 for the CPU.
  EXPECT_GT(static_cast<double>(hits) / total, 0.80);
}

TEST(Int8PredictorTest, Fp32PredictionsUnchangedByInt8Bank) {
  // Loading only the fp32 forests (a DCLP v1 situation) must predict fp32
  // kernels identically to the fully trained predictor.
  const auto& p = trained_int8_predictor();
  const LatencyPredictor fp32_only = LatencyPredictor::from_forests(
      p.device(), p.forests());
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const FusedKernel k = sample_kernel(KernelKind::kConvRelu, rng);
    EXPECT_DOUBLE_EQ(p.predict_kernel_ms(k), fp32_only.predict_kernel_ms(k));
  }
}

TEST(Int8PersistenceTest, V2RoundTripPreservesInt8Forests) {
  const auto& original = trained_int8_predictor();
  const LatencyPredictor restored =
      parse_predictor(serialize_predictor(original));
  EXPECT_EQ(restored.device().int8_peak_gops,
            original.device().int8_peak_gops);
  EXPECT_EQ(restored.int8_forests().size(), original.int8_forests().size());
  Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    FusedKernel k = sample_kernel(KernelKind::kConvBn, rng);
    k.precision = Precision::kInt8;
    ASSERT_DOUBLE_EQ(original.predict_kernel_ms(k),
                     restored.predict_kernel_ms(k));
  }
}

TEST(Int8PersistenceTest, ParsesV1FilesWithoutInt8Block) {
  // Hand-assemble a minimal DCLP v1 stream: device block without
  // int8_peak_gops, one single-leaf forest, no int8 block. Loading it must
  // succeed with int8 defaults (no fast path, empty int8 bank).
  std::vector<unsigned char> bytes;
  auto put_u32 = [&](std::uint32_t v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  };
  auto put_i32 = [&](std::int32_t v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  };
  auto put_f64 = [&](double v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  };
  auto put_str = [&](const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  };
  bytes.insert(bytes.end(), {'D', 'C', 'L', 'P'});
  put_u32(1);  // version 1
  put_str("cortexA76cpu");
  put_str("Pixel4");
  put_str("TFLite v2.1");
  put_str("CortexA76 CPU");
  put_f64(110.0);   // peak_gflops (no int8_peak_gops in v1)
  put_f64(16.0);    // mem_bw_gbps
  put_f64(0.03);    // launch_overhead_ms
  put_f64(0.45);    // util_small
  put_f64(0.85);    // util_large
  put_f64(6e6);     // flops_half_util
  put_i32(4);       // simd_lanes
  put_f64(0.02);    // jitter_amp
  put_i32(0);       // vpu_mode_switches
  put_u32(1);       // one forest
  put_i32(0);       // kind 0 (kConvBnRelu)
  put_u32(1);       // one tree
  put_u32(1);       // one node
  put_i32(-1);      // leaf
  put_f64(0.0);     // threshold
  put_i32(-1);      // left
  put_i32(-1);      // right
  put_f64(0.25);    // leaf value
  const LatencyPredictor restored = parse_predictor(bytes);
  EXPECT_EQ(restored.device().int8_peak_gops, 0.0);
  EXPECT_TRUE(restored.int8_forests().empty());
  EXPECT_TRUE(restored.trained());
}

}  // namespace
}  // namespace dcnas::latency
