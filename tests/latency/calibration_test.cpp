/// Calibration tests: tie the simulator/predictor stack to the paper's
/// reported latency scales (Tables 3-5). These are deliberately looser than
/// unit tests — they pin the *shape* of the reproduction: which device is
/// slow, what the baseline mean/std look like, and how the Pareto-winning
/// small models compare to stock ResNet-18.

#include <gtest/gtest.h>

#include "dcnas/common/stats.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/latency/simulator.hpp"

namespace dcnas::latency {
namespace {

using graph::build_resnet_graph;
using graph::fuse_graph;
using nn::ResNetConfig;

std::vector<double> simulated_per_device(const ResNetConfig& cfg) {
  const auto kernels = fuse_graph(build_resnet_graph(cfg));
  std::vector<double> out;
  for (const auto& d : edge_device_zoo()) {
    out.push_back(simulate_model_ms(d, kernels));
  }
  return out;
}

ResNetConfig pareto_winner(std::int64_t channels, bool with_pool) {
  ResNetConfig cfg = ResNetConfig::baseline(channels);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_stride = 2;
  cfg.conv1_padding = 1;
  cfg.with_pool = with_pool;
  return cfg;
}

TEST(CalibrationTest, BaselineResNet18MeanLatencyNearTable5) {
  // Paper: 31.91 ms (5ch) / 32.46 ms (7ch) averaged over the 4 predictors.
  const auto lat5 = simulated_per_device(ResNetConfig::baseline(5));
  const auto lat7 = simulated_per_device(ResNetConfig::baseline(7));
  EXPECT_NEAR(mean(lat5), 31.91, 8.0);
  EXPECT_NEAR(mean(lat7), 32.46, 8.0);
  EXPECT_GT(mean(lat7), mean(lat5));
}

TEST(CalibrationTest, BaselineLatencySpreadNearTable5) {
  // Paper lat_std ~20.4 ms: the VPU must sit far from the mobile GPUs.
  const auto lat = simulated_per_device(ResNetConfig::baseline(5));
  EXPECT_NEAR(sample_stddev(lat), 20.36, 8.0);
  // Ordering: GPUs fastest, CPU middle, VPU slowest.
  EXPECT_LT(lat[1], lat[0]);
  EXPECT_LT(lat[2], lat[0]);
  EXPECT_GT(lat[3], 1.8 * lat[0]);
}

TEST(CalibrationTest, ParetoWinnerLatencyNearTable4) {
  // Paper: width-32/k3/pool models predict ~8.1-8.2 ms mean.
  const auto lat = simulated_per_device(pareto_winner(5, true));
  EXPECT_NEAR(mean(lat), 8.13, 3.5);
  // Roughly 4x faster than the baseline, as in Table 4 vs Table 5.
  const auto base = simulated_per_device(ResNetConfig::baseline(5));
  const double speedup = mean(base) / mean(lat);
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 6.5);
}

TEST(CalibrationTest, NoPoolVariantRoughlyDoublesLatency) {
  // Table 4: pool variants ~8.2 ms vs no-pool variants ~18.3 ms (~2.2x).
  const auto with_pool = simulated_per_device(pareto_winner(7, true));
  const auto no_pool = simulated_per_device(pareto_winner(7, false));
  const double ratio = mean(no_pool) / mean(with_pool);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 3.2);
}

TEST(CalibrationTest, SearchSpaceLatencyRangeNearTable3) {
  // Paper Table 3: latency spans 8.13 .. 249.56 ms across 1,717 models.
  const auto fastest = simulated_per_device(pareto_winner(5, true));
  ResNetConfig big = ResNetConfig::baseline(7);
  big.conv1_kernel = 7;
  big.conv1_stride = 1;
  big.conv1_padding = 3;
  big.with_pool = false;
  big.init_width = 64;
  const auto slowest = simulated_per_device(big);
  EXPECT_LT(mean(fastest), 15.0);
  EXPECT_GT(mean(fastest), 4.0);
  // Simulated ground truth for the largest config overshoots the paper's
  // 249.56 ms because the paper's numbers are nn-Meter *predictions*: RF
  // regressors saturate outside their training range, compressing the top
  // end. The pipeline (and Table 3 bench) use predicted values, which land
  // nearer the paper; here we only bound the simulator's order of magnitude.
  EXPECT_GT(mean(slowest), 120.0);
  EXPECT_LT(mean(slowest), 900.0);
}

TEST(CalibrationTest, PredictorAccuracyShapeMatchesTable2) {
  // Paper Table 2 (from nn-Meter): cortexA76cpu 99.0%, adreno640gpu 99.1%,
  // adreno630gpu 99.0%, myriadvpu 83.4% at ±10%. The reproduction must put
  // the three mobile predictors >= 95% and the VPU clearly lower, in the
  // 70-92% band.
  const NnMeter& meter = NnMeter::shared();
  double vpu = 0.0;
  for (const auto& p : meter.predictors()) {
    const auto acc = p.evaluate_kernel_level(150, 424242);
    if (p.device().name == "myriadvpu") {
      vpu = acc.hit_rate_10pct;
    } else {
      EXPECT_GE(acc.hit_rate_10pct, 0.95) << p.device().name;
    }
  }
  EXPECT_GT(vpu, 0.70);
  EXPECT_LT(vpu, 0.93);
}

}  // namespace
}  // namespace dcnas::latency
