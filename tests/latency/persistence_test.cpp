#include "dcnas/latency/persistence.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dcnas/latency/features.hpp"

namespace dcnas::latency {
namespace {

using graph::KernelKind;

const LatencyPredictor& trained_predictor() {
  static const LatencyPredictor predictor = [] {
    LatencyPredictor p(device_by_name("adreno630gpu"));
    PredictorTrainOptions opt;
    opt.samples_per_kind = 200;  // small but real
    opt.forest.num_trees = 6;
    p.train(opt);
    return p;
  }();
  return predictor;
}

TEST(PersistenceTest, RoundTripPredictsIdentically) {
  const LatencyPredictor& original = trained_predictor();
  const LatencyPredictor restored =
      parse_predictor(serialize_predictor(original));
  EXPECT_EQ(restored.device().name, "adreno630gpu");
  EXPECT_EQ(restored.device().device_label, "Pixel3XL");
  Rng rng(55);
  for (const KernelKind kind :
       {KernelKind::kConvBnRelu, KernelKind::kMaxPool, KernelKind::kLinear,
        KernelKind::kAddRelu}) {
    for (int i = 0; i < 25; ++i) {
      const auto k = sample_kernel(kind, rng);
      ASSERT_DOUBLE_EQ(original.predict_kernel_ms(k),
                       restored.predict_kernel_ms(k));
    }
  }
}

TEST(PersistenceTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_predictor.dclp")
          .string();
  const std::int64_t written = save_predictor(trained_predictor(), path);
  EXPECT_EQ(written,
            static_cast<std::int64_t>(std::filesystem::file_size(path)));
  const LatencyPredictor restored = load_predictor(path);
  EXPECT_TRUE(restored.trained());
  Rng rng(7);
  const auto k = sample_kernel(KernelKind::kConvBn, rng);
  EXPECT_DOUBLE_EQ(restored.predict_kernel_ms(k),
                   trained_predictor().predict_kernel_ms(k));
  std::remove(path.c_str());
}

TEST(PersistenceTest, RejectsCorruption) {
  auto bytes = serialize_predictor(trained_predictor());
  auto bad = bytes;
  bad[0] = 'Z';
  EXPECT_THROW(parse_predictor(bad), InvalidArgument);
  std::vector<unsigned char> truncated(bytes.begin(),
                                       bytes.begin() + 100);
  EXPECT_THROW(parse_predictor(truncated), InvalidArgument);
  auto padded = bytes;
  padded.push_back(1);
  EXPECT_THROW(parse_predictor(padded), InvalidArgument);
}

TEST(PersistenceTest, RejectsUntrainedPredictor) {
  LatencyPredictor untrained(device_by_name("cortexA76cpu"));
  EXPECT_THROW(serialize_predictor(untrained), InvalidArgument);
}

TEST(PersistenceTest, FromForestsValidates) {
  std::map<KernelKind, RandomForest> empty;
  EXPECT_THROW(
      LatencyPredictor::from_forests(device_by_name("myriadvpu"), empty),
      InvalidArgument);
}

TEST(PersistenceTest, FromNodesValidatesTopology) {
  // A split node pointing outside the node array must be rejected.
  std::vector<RegressionTree::Node> bad(1);
  bad[0].feature = 0;
  bad[0].left = 5;
  bad[0].right = 1;
  EXPECT_THROW(RegressionTree::from_nodes(bad), InvalidArgument);
  // Leaf with children rejected.
  std::vector<RegressionTree::Node> leafy(1);
  leafy[0].feature = -1;
  leafy[0].left = 0;
  EXPECT_THROW(RegressionTree::from_nodes(leafy), InvalidArgument);
  EXPECT_THROW(RegressionTree::from_nodes({}), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::latency
