#include "dcnas/latency/device.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dcnas/common/error.hpp"

namespace dcnas::latency {
namespace {

TEST(DeviceZooTest, HasTheFourPaperPredictors) {
  const auto& zoo = edge_device_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0].name, "cortexA76cpu");
  EXPECT_EQ(zoo[1].name, "adreno640gpu");
  EXPECT_EQ(zoo[2].name, "adreno630gpu");
  EXPECT_EQ(zoo[3].name, "myriadvpu");
}

TEST(DeviceZooTest, Table2MetadataMatchesPaper) {
  EXPECT_EQ(device_by_name("cortexA76cpu").device_label, "Pixel4");
  EXPECT_EQ(device_by_name("adreno640gpu").device_label, "Mi9");
  EXPECT_EQ(device_by_name("adreno630gpu").device_label, "Pixel3XL");
  EXPECT_EQ(device_by_name("myriadvpu").device_label, "Intel Movidius NCS2");
  EXPECT_EQ(device_by_name("myriadvpu").framework, "OpenVINO2019R2");
  EXPECT_EQ(device_by_name("cortexA76cpu").framework, "TFLite v2.1");
}

TEST(DeviceZooTest, OnlyVpuHasModeSwitches) {
  for (const auto& d : edge_device_zoo()) {
    EXPECT_EQ(d.vpu_mode_switches, d.name == "myriadvpu") << d.name;
  }
}

TEST(DeviceZooTest, SpecsArePhysicallySane) {
  std::set<std::string> names;
  for (const auto& d : edge_device_zoo()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate " << d.name;
    EXPECT_GT(d.peak_gflops, 0.0);
    EXPECT_GT(d.mem_bw_gbps, 0.0);
    EXPECT_GT(d.launch_overhead_ms, 0.0);
    EXPECT_GT(d.util_small, 0.0);
    EXPECT_LE(d.util_large, 1.0);
    EXPECT_LT(d.util_small, d.util_large);
    EXPECT_GE(d.simd_lanes, 1);
    EXPECT_GE(d.jitter_amp, 0.0);
    EXPECT_LT(d.jitter_amp, 0.2);
  }
}

TEST(DeviceZooTest, VpuIsTheSlowestGpuTheFastest) {
  // Ordering behind the paper's latency spread (Table 5 lat_std ~ 20 ms on
  // a 32 ms mean requires one clearly slower device).
  const auto& cpu = device_by_name("cortexA76cpu");
  const auto& gpu = device_by_name("adreno640gpu");
  const auto& vpu = device_by_name("myriadvpu");
  EXPECT_GT(gpu.peak_gflops, cpu.peak_gflops);
  EXPECT_LT(vpu.peak_gflops, cpu.peak_gflops);
  EXPECT_LT(vpu.mem_bw_gbps, cpu.mem_bw_gbps);
}

TEST(DeviceZooTest, UnknownNameThrows) {
  EXPECT_THROW(device_by_name("tpu_v5"), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::latency
