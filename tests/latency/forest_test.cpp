#include "dcnas/latency/forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcnas/common/error.hpp"

namespace dcnas::latency {
namespace {

Dataset2d make_dataset(std::size_t n, std::uint64_t seed,
                       double (*fn)(double, double), double noise = 0.0) {
  Rng rng(seed);
  Dataset2d d;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(0.0, 10.0);
    d.x.push_back({a, b});
    d.y.push_back(fn(a, b) + (noise > 0 ? rng.normal(0.0, noise) : 0.0));
  }
  return d;
}

double step_fn(double a, double b) { return (a > 5.0 ? 10.0 : 0.0) + b; }
double linear_fn(double a, double b) { return 2.0 * a + 3.0 * b; }

TEST(RegressionTreeTest, FitsPiecewiseConstantExactly) {
  const Dataset2d d = make_dataset(400, 1, [](double a, double) {
    return a > 5.0 ? 7.0 : -2.0;
  });
  RegressionTree tree;
  std::vector<std::size_t> idx(d.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(2);
  tree.fit(d, idx, TreeOptions{}, rng);
  EXPECT_NEAR(tree.predict({2.0, 0.0}), -2.0, 1e-9);
  EXPECT_NEAR(tree.predict({8.0, 0.0}), 7.0, 1e-9);
}

TEST(RegressionTreeTest, DepthZeroIsMeanPredictor) {
  const Dataset2d d = make_dataset(100, 3, linear_fn);
  RegressionTree tree;
  std::vector<std::size_t> idx(d.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  TreeOptions opt;
  opt.max_depth = 0;
  Rng rng(4);
  tree.fit(d, idx, opt, rng);
  double mean = 0.0;
  for (double y : d.y) mean += y;
  mean /= static_cast<double>(d.size());
  EXPECT_NEAR(tree.predict({5.0, 5.0}), mean, 1e-9);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RegressionTreeTest, RejectsEmptyFitAndUntrainedPredict) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict({1.0}), InvalidArgument);
  Dataset2d d;
  Rng rng(1);
  EXPECT_THROW(tree.fit(d, {}, TreeOptions{}, rng), InvalidArgument);
}

TEST(RandomForestTest, LearnsSmoothFunction) {
  const Dataset2d train = make_dataset(2000, 5, linear_fn, 0.1);
  const Dataset2d test = make_dataset(300, 6, linear_fn);
  RandomForest forest;
  ForestOptions opt;
  opt.num_trees = 10;
  forest.fit(train, opt);
  double sse = 0.0, var = 0.0, mean = 0.0;
  for (double y : test.y) mean += y;
  mean /= static_cast<double>(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double p = forest.predict(test.x[i]);
    sse += (p - test.y[i]) * (p - test.y[i]);
    var += (test.y[i] - mean) * (test.y[i] - mean);
  }
  EXPECT_LT(sse / var, 0.02) << "R^2 should exceed 0.98";
}

TEST(RandomForestTest, LearnsStepFunction) {
  const Dataset2d train = make_dataset(1500, 7, step_fn);
  RandomForest forest;
  forest.fit(train, ForestOptions{});
  EXPECT_NEAR(forest.predict({3.0, 4.0}), 4.0, 0.6);
  EXPECT_NEAR(forest.predict({7.0, 4.0}), 14.0, 0.6);
}

TEST(RandomForestTest, DeterministicPerSeed) {
  const Dataset2d train = make_dataset(500, 9, linear_fn, 0.2);
  RandomForest f1, f2;
  ForestOptions opt;
  opt.seed = 42;
  f1.fit(train, opt);
  f2.fit(train, opt);
  for (double a = 0.5; a < 10.0; a += 2.3) {
    EXPECT_DOUBLE_EQ(f1.predict({a, 5.0}), f2.predict({a, 5.0}));
  }
}

TEST(RandomForestTest, DifferentSeedsDifferentForests) {
  const Dataset2d train = make_dataset(500, 9, linear_fn, 0.5);
  RandomForest f1, f2;
  ForestOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  f1.fit(train, o1);
  f2.fit(train, o2);
  bool any_diff = false;
  for (double a = 0.5; a < 10.0; a += 1.1) {
    if (f1.predict({a, 5.0}) != f2.predict({a, 5.0})) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForestTest, ValidatesInputs) {
  RandomForest forest;
  Dataset2d d;
  EXPECT_THROW(forest.fit(d, ForestOptions{}), InvalidArgument);
  d.x.push_back({1.0, 2.0});
  d.y.push_back(1.0);
  d.x.push_back({1.0});  // ragged
  d.y.push_back(2.0);
  EXPECT_THROW(forest.fit(d, ForestOptions{}), InvalidArgument);
  EXPECT_THROW(forest.predict({1.0, 2.0}), InvalidArgument);
  ForestOptions bad;
  bad.num_trees = 0;
  Dataset2d ok = make_dataset(10, 1, linear_fn);
  EXPECT_THROW(forest.fit(ok, bad), InvalidArgument);
}

TEST(RandomForestTest, ConstantTargetPredictsConstant) {
  Dataset2d d = make_dataset(50, 11, [](double, double) { return 3.5; });
  RandomForest forest;
  forest.fit(d, ForestOptions{});
  EXPECT_DOUBLE_EQ(forest.predict({1.0, 1.0}), 3.5);
  EXPECT_DOUBLE_EQ(forest.predict({9.0, 9.0}), 3.5);
}

}  // namespace
}  // namespace dcnas::latency
