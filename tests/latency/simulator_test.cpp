#include "dcnas/latency/simulator.hpp"

#include <gtest/gtest.h>

#include "dcnas/graph/builder.hpp"
#include "dcnas/latency/features.hpp"

namespace dcnas::latency {
namespace {

using graph::FusedKernel;
using graph::KernelKind;

FusedKernel conv_kernel(std::int64_t cin, std::int64_t cout, std::int64_t hw,
                        std::int64_t k, std::int64_t s) {
  FusedKernel fk;
  fk.kind = KernelKind::kConvBnRelu;
  fk.in_shape = {cin, hw, hw};
  const std::int64_t out_hw = (hw + 2 * (k / 2) - k) / s + 1;
  fk.out_shape = {cout, out_hw, out_hw};
  fk.attrs = {k, s, k / 2};
  fk.params = cout * cin * k * k + 4 * cout;
  fk.flops = 2 * cout * cin * k * k * out_hw * out_hw;
  return fk;
}

TEST(SimulatorTest, LatencyIsPositiveAndDeterministic) {
  const auto& dev = device_by_name("cortexA76cpu");
  const FusedKernel k = conv_kernel(64, 64, 56, 3, 1);
  const double a = simulate_kernel_ms(dev, k);
  const double b = simulate_kernel_ms(dev, k);
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimulatorTest, MoreFlopsMoreTime) {
  const auto& dev = device_by_name("cortexA76cpu");
  const double small = simulate_kernel_ms(dev, conv_kernel(32, 32, 28, 3, 1));
  const double big = simulate_kernel_ms(dev, conv_kernel(64, 64, 112, 3, 1));
  EXPECT_GT(big, 4.0 * small);
}

TEST(SimulatorTest, OverheadDominatesTinyKernels) {
  const auto& dev = device_by_name("adreno640gpu");
  FusedKernel k;
  k.kind = KernelKind::kRelu;
  k.in_shape = {4, 2, 2};
  k.out_shape = k.in_shape;
  k.flops = 16;
  const double ms = simulate_kernel_ms(dev, k);
  EXPECT_GT(ms, dev.launch_overhead_ms * 0.9);
  EXPECT_LT(ms, dev.launch_overhead_ms * 1.6);
}

TEST(SimulatorTest, DevicesDisagree) {
  const FusedKernel k = conv_kernel(64, 128, 56, 3, 2);
  const double cpu = simulate_kernel_ms(device_by_name("cortexA76cpu"), k);
  const double gpu = simulate_kernel_ms(device_by_name("adreno640gpu"), k);
  const double vpu = simulate_kernel_ms(device_by_name("myriadvpu"), k);
  EXPECT_NE(cpu, gpu);
  EXPECT_GT(vpu, cpu);  // VPU is the slow device for mid-size convs
}

TEST(SimulatorTest, LaneQuantizationCreatesSteps) {
  // 65 output channels on 16-lane VPU wastes ~23% vs 64 channels.
  const auto& vpu = device_by_name("myriadvpu");
  const double t64 = simulate_kernel_ms(vpu, conv_kernel(64, 64, 56, 3, 1));
  const double t65 = simulate_kernel_ms(vpu, conv_kernel(64, 65, 56, 3, 1));
  const double per_channel = t64 / 64.0;
  EXPECT_GT(t65, t64 + 10.0 * per_channel * 0.5);
}

TEST(SimulatorTest, VpuModeSwitchCliffs) {
  const auto& vpu = device_by_name("myriadvpu");
  const auto& cpu = device_by_name("cortexA76cpu");
  // 7x7 stride-1 conv falls off the VPU fast path (~2x cliff).
  const double fast = simulate_kernel_ms(vpu, conv_kernel(64, 64, 56, 7, 2));
  const double slow = simulate_kernel_ms(vpu, conv_kernel(64, 64, 56, 7, 1));
  // Stride 1 has ~4x output pixels -> ~4x the work; the cliff adds ~2x more.
  EXPECT_GT(slow / fast, 6.0);
  // The same pair on the CPU shows only the ~4x work ratio.
  const double cpu_fast = simulate_kernel_ms(cpu, conv_kernel(64, 64, 56, 7, 2));
  const double cpu_slow = simulate_kernel_ms(cpu, conv_kernel(64, 64, 56, 7, 1));
  EXPECT_LT(cpu_slow / cpu_fast, 5.5);
}

TEST(SimulatorTest, ModelLatencyIsSumOfKernels) {
  const auto& dev = device_by_name("adreno630gpu");
  std::vector<FusedKernel> ks = {conv_kernel(5, 64, 224, 7, 2),
                                 conv_kernel(64, 64, 56, 3, 1)};
  const double total = simulate_model_ms(dev, ks);
  EXPECT_DOUBLE_EQ(total, simulate_kernel_ms(dev, ks[0]) +
                              simulate_kernel_ms(dev, ks[1]));
}

TEST(SimulatorTest, JitterIsBounded) {
  // Two kernels with identical roofline cost but different shapes should
  // differ by at most ~2x the jitter amplitude on a non-VPU device.
  const auto& dev = device_by_name("cortexA76cpu");
  const double a = simulate_kernel_ms(dev, conv_kernel(64, 64, 56, 3, 1));
  const double b = simulate_kernel_ms(dev, conv_kernel(64, 64, 56, 3, 1));
  EXPECT_DOUBLE_EQ(a, b);
  const double c = simulate_kernel_ms(dev, conv_kernel(64, 64, 57, 3, 1));
  // ~3.6% more pixels; total difference stays within work + 2*jitter.
  EXPECT_NEAR(c / a, 1.036, 0.08);
}

TEST(SimulatorPropertyTest, MemoryBoundKernelsTrackBandwidth) {
  // Elementwise adds are bandwidth-bound: halving bandwidth should roughly
  // double time (minus fixed overhead).
  DeviceSpec fast = device_by_name("cortexA76cpu");
  DeviceSpec slow = fast;
  slow.mem_bw_gbps /= 2.0;
  FusedKernel k;
  k.kind = KernelKind::kAddRelu;
  k.in_shape = {256, 56, 56};
  k.out_shape = k.in_shape;
  k.flops = 2 * k.out_shape.numel();
  const double tf = simulate_kernel_ms(fast, k) - fast.launch_overhead_ms * 1.0;
  const double ts = simulate_kernel_ms(slow, k) - slow.launch_overhead_ms * 1.0;
  EXPECT_NEAR(ts / tf, 2.0, 0.15);
}

}  // namespace
}  // namespace dcnas::latency
