/// Property sweep of the latency/memory objectives over the entire
/// 288-point architecture space (one input combination): the structural
/// invariants Pareto analysis relies on must hold at every lattice point.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dcnas/graph/serialize.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/latency/simulator.hpp"
#include "dcnas/nas/search_space.hpp"

namespace dcnas::latency {
namespace {

struct SpaceData {
  std::vector<nas::TrialConfig> configs;
  std::vector<double> predicted;  ///< mean over 4 predictors
  std::vector<double> simulated;  ///< mean over 4 device simulators
  std::vector<double> memory_mb;
};

const SpaceData& space_data() {
  static const SpaceData data = [] {
    SpaceData d;
    d.configs = nas::SearchSpace::enumerate_architectures(7, 16);
    const NnMeter& meter = NnMeter::shared();
    for (const auto& cfg : d.configs) {
      const auto g = graph::build_resnet_graph(cfg.to_resnet_config());
      const auto kernels = graph::fuse_graph(g);
      d.predicted.push_back(meter.predict_kernels(kernels).mean_ms);
      double sim = 0.0;
      for (const auto& dev : edge_device_zoo()) {
        sim += simulate_model_ms(dev, kernels);
      }
      d.simulated.push_back(sim / 4.0);
      d.memory_mb.push_back(graph::model_memory_mb(g));
    }
    return d;
  }();
  return data;
}

TEST(ModelSpaceProperty, AllPredictionsFiniteAndPositive) {
  const auto& d = space_data();
  ASSERT_EQ(d.configs.size(), 288u);
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    ASSERT_TRUE(std::isfinite(d.predicted[i])) << d.configs[i].to_string();
    ASSERT_GT(d.predicted[i], 1.0) << d.configs[i].to_string();
    ASSERT_LT(d.predicted[i], 2000.0) << d.configs[i].to_string();
  }
}

TEST(ModelSpaceProperty, PredictionTracksSimulationAcrossTheSpace) {
  // Model-level prediction within ±35% of simulated truth for every
  // architecture — predictions are extrapolating for the largest configs.
  const auto& d = space_data();
  double worst = 0.0;
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    const double rel = std::abs(d.predicted[i] - d.simulated[i]) / d.simulated[i];
    worst = std::max(worst, rel);
    ASSERT_LT(rel, 0.35) << d.configs[i].to_string();
  }
  // And the typical error is much tighter.
  double total = 0.0;
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    total += std::abs(d.predicted[i] - d.simulated[i]) / d.simulated[i];
  }
  EXPECT_LT(total / static_cast<double>(d.configs.size()), 0.12);
}

TEST(ModelSpaceProperty, WidthMonotoneInBothObjectives) {
  // Fixing everything but width: w32 < w48 < w64 in simulated latency and
  // memory (more filters can never be free).
  const auto& d = space_data();
  std::map<std::string, std::map<int, std::size_t>> groups;
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    const auto& c = d.configs[i];
    std::string key = std::to_string(c.kernel_size) + "/" +
                      std::to_string(c.stride) + "/" +
                      std::to_string(c.padding) + "/" +
                      std::to_string(c.pool_choice) + "/" +
                      std::to_string(c.kernel_size_pool) + "/" +
                      std::to_string(c.stride_pool);
    groups[key][c.initial_output_feature] = i;
  }
  for (const auto& [key, by_width] : groups) {
    ASSERT_EQ(by_width.size(), 3u) << key;
    EXPECT_LT(d.simulated[by_width.at(32)], d.simulated[by_width.at(48)]) << key;
    EXPECT_LT(d.simulated[by_width.at(48)], d.simulated[by_width.at(64)]) << key;
    EXPECT_LT(d.memory_mb[by_width.at(32)], d.memory_mb[by_width.at(48)]) << key;
    EXPECT_LT(d.memory_mb[by_width.at(48)], d.memory_mb[by_width.at(64)]) << key;
  }
}

TEST(ModelSpaceProperty, StridedPoolingNeverSlower) {
  // pool stride 2 strictly reduces downstream work vs stride 1, all else
  // equal (both pooled).
  const auto& d = space_data();
  std::map<std::string, std::map<int, std::size_t>> groups;
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    const auto& c = d.configs[i];
    if (!c.with_pool()) continue;
    std::string key = std::to_string(c.kernel_size) + "/" +
                      std::to_string(c.stride) + "/" +
                      std::to_string(c.padding) + "/" +
                      std::to_string(c.kernel_size_pool) + "/" +
                      std::to_string(c.initial_output_feature);
    groups[key][c.stride_pool] = i;
  }
  for (const auto& [key, by_stride] : groups) {
    ASSERT_EQ(by_stride.size(), 2u) << key;
    EXPECT_LT(d.simulated[by_stride.at(2)], d.simulated[by_stride.at(1)])
        << key;
  }
}

TEST(ModelSpaceProperty, NoPoolDuplicatesShareObjectives) {
  // Lattice points that canonicalize to the same architecture must have
  // identical latency and memory (only accuracy noise distinguishes them).
  const auto& d = space_data();
  std::map<std::string, std::size_t> first_seen;
  int duplicates = 0;
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    const std::string key = d.configs[i].canonical_arch_key();
    const auto [it, inserted] = first_seen.emplace(key, i);
    if (!inserted) {
      ++duplicates;
      EXPECT_DOUBLE_EQ(d.predicted[i], d.predicted[it->second]) << key;
      EXPECT_DOUBLE_EQ(d.memory_mb[i], d.memory_mb[it->second]) << key;
    }
  }
  EXPECT_EQ(duplicates, 288 - 180);  // the Fig. 2 dedup arithmetic
}

TEST(ModelSpaceProperty, MemoryDependsOnlyOnArchitectureNotPool) {
  // Pooling layers are parameter-free: memory within a (width, kernel)
  // class is constant.
  const auto& d = space_data();
  std::map<std::string, double> by_class;
  for (std::size_t i = 0; i < d.configs.size(); ++i) {
    const auto& c = d.configs[i];
    const std::string key = std::to_string(c.initial_output_feature) + "/" +
                            std::to_string(c.kernel_size);
    const auto [it, inserted] = by_class.emplace(key, d.memory_mb[i]);
    if (!inserted) {
      // Structure bytes differ by at most the pool node record (~60 B).
      EXPECT_NEAR(d.memory_mb[i], it->second, 1e-4) << key;
    }
  }
  EXPECT_EQ(by_class.size(), 6u);  // 3 widths x 2 kernels
}

}  // namespace
}  // namespace dcnas::latency
