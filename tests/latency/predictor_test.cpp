#include "dcnas/latency/predictor.hpp"

#include <gtest/gtest.h>

#include "dcnas/latency/features.hpp"
#include "dcnas/latency/simulator.hpp"

namespace dcnas::latency {
namespace {

using graph::KernelKind;

PredictorTrainOptions quick_options() {
  PredictorTrainOptions opt;
  opt.samples_per_kind = 300;  // fast but representative for unit tests
  opt.forest.num_trees = 8;
  return opt;
}

TEST(KernelFeaturesTest, VectorHasDocumentedLayout) {
  Rng rng(1);
  const auto k = sample_kernel(KernelKind::kConvBnRelu, rng);
  const auto f = kernel_features(k);
  ASSERT_EQ(f.size(), kNumKernelFeatures);
  EXPECT_EQ(f[0], static_cast<double>(k.in_shape.c));
  EXPECT_EQ(f[1], static_cast<double>(k.out_shape.c));
  EXPECT_EQ(f[4], static_cast<double>(k.attrs.kernel));
  EXPECT_GT(f[6], 0.0);  // log2 flops
}

TEST(SampleKernelTest, ShapesAreInternallyConsistent) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto k = sample_kernel(KernelKind::kConvBn, rng);
    EXPECT_GT(k.in_shape.c, 0);
    EXPECT_GT(k.out_shape.h, 0);
    EXPECT_LE(k.out_shape.h, k.in_shape.h);
    EXPECT_GT(k.flops, 0);
    EXPECT_GT(k.params, 0);
  }
  for (int i = 0; i < 50; ++i) {
    const auto k = sample_kernel(KernelKind::kGlobalAvgPool, rng);
    EXPECT_EQ(k.out_shape.h, 1);
    EXPECT_EQ(k.out_shape.c, k.in_shape.c);
  }
  for (int i = 0; i < 50; ++i) {
    const auto k = sample_kernel(KernelKind::kLinear, rng);
    EXPECT_EQ(k.in_shape.h, 1);
    EXPECT_EQ(k.params, k.in_shape.c * k.out_shape.c + k.out_shape.c);
  }
}

TEST(LatencyPredictorTest, UntrainedThrows) {
  LatencyPredictor p(device_by_name("cortexA76cpu"));
  Rng rng(1);
  const auto k = sample_kernel(KernelKind::kConv, rng);
  EXPECT_THROW(p.predict_kernel_ms(k), InvalidArgument);
}

TEST(LatencyPredictorTest, PredictsHeldOutKernelsWell) {
  LatencyPredictor p(device_by_name("cortexA76cpu"));
  p.train(quick_options());
  const auto acc = p.evaluate_kernel_level(120, /*seed=*/777);
  EXPECT_GT(acc.hit_rate_10pct, 0.9);
  EXPECT_LT(acc.rmspe, 0.35);
  EXPECT_GT(acc.num_samples, 1000u);
}

TEST(LatencyPredictorTest, ModelPredictionSumsKernels) {
  LatencyPredictor p(device_by_name("adreno640gpu"));
  p.train(quick_options());
  Rng rng(5);
  std::vector<graph::FusedKernel> ks = {
      sample_kernel(KernelKind::kConvBnRelu, rng),
      sample_kernel(KernelKind::kMaxPool, rng),
      sample_kernel(KernelKind::kLinear, rng)};
  const double total = p.predict_model_ms(ks);
  double sum = 0.0;
  for (const auto& k : ks) sum += p.predict_kernel_ms(k);
  EXPECT_DOUBLE_EQ(total, sum);
}

TEST(NnMeterTest, PredictsAllFourDevices) {
  // Uses the shared instance (trained with default options) — also
  // exercised by the Table 2/3/4/5 benches.
  const NnMeter& meter = NnMeter::shared();
  const auto g = graph::build_resnet_graph(nn::ResNetConfig::baseline(5));
  const auto pred = meter.predict_graph(g);
  ASSERT_EQ(pred.per_device_ms.size(), 4u);
  EXPECT_EQ(pred.per_device_ms[0].first, "cortexA76cpu");
  EXPECT_EQ(pred.per_device_ms[3].first, "myriadvpu");
  for (const auto& [name, ms] : pred.per_device_ms) {
    EXPECT_GT(ms, 1.0) << name;
    EXPECT_LT(ms, 500.0) << name;
  }
  EXPECT_GT(pred.std_ms, 0.0);
  EXPECT_GT(pred.mean_ms, 0.0);
  EXPECT_THROW(meter.predictor("nope"), InvalidArgument);
}

TEST(NnMeterTest, ModelLevelPredictionTracksSimulator) {
  // Errors average out across kernels: model-level prediction should be
  // within ~10% of simulated ground truth for in-space architectures.
  const NnMeter& meter = NnMeter::shared();
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(7);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  const auto kernels = graph::fuse_graph(graph::build_resnet_graph(cfg));
  for (const auto& p : meter.predictors()) {
    const double truth = simulate_model_ms(p.device(), kernels);
    const double pred = p.predict_model_ms(kernels);
    EXPECT_NEAR(pred / truth, 1.0, p.device().vpu_mode_switches ? 0.30 : 0.12)
        << p.device().name;
  }
}

}  // namespace
}  // namespace dcnas::latency
