#include "dcnas/nn/metrics.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/error.hpp"

namespace dcnas::nn {
namespace {

TEST(AccuracyTest, CountsArgmaxMatches) {
  const Tensor logits =
      Tensor::from_values({4, 2}, {2, 1, 0, 3, 5, 4, 1, 2});
  // argmax per row: 0, 1, 0, 1
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 1, 0}), 0.5);
}

TEST(AccuracyTest, RejectsMismatchedLabels) {
  const Tensor logits({2, 2});
  EXPECT_THROW(accuracy(logits, {0}), InvalidArgument);
}

TEST(BinaryConfusionTest, CountsAllQuadrants) {
  const auto c =
      binary_confusion({1, 1, 0, 0, 1, 0}, {1, 0, 0, 1, 1, 0});
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 2);
  EXPECT_DOUBLE_EQ(c.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.f1(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 4.0 / 6.0);
}

TEST(BinaryConfusionTest, DegenerateDenominatorsGiveZero) {
  BinaryConfusion c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
}

TEST(BinaryConfusionTest, RejectsNonBinaryValues) {
  EXPECT_THROW(binary_confusion({2}, {0}), InvalidArgument);
  EXPECT_THROW(binary_confusion({0}, {-1}), InvalidArgument);
  EXPECT_THROW(binary_confusion({0, 1}, {0}), InvalidArgument);
}

TEST(BinaryConfusionTest, PerfectClassifier) {
  const auto c = binary_confusion({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.f1(), 1.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

}  // namespace
}  // namespace dcnas::nn
