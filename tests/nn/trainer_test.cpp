#include "dcnas/nn/trainer.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/activations.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/nn/linear.hpp"
#include "dcnas/nn/pooling.hpp"
#include "dcnas/nn/sequential.hpp"

namespace dcnas::nn {
namespace {

/// Tiny synthetic image task: class 1 images have a bright center blob,
/// class 0 images are noise. Easily separable, so a small CNN must learn it.
void make_blob_dataset(std::int64_t n, std::int64_t hw, Tensor* images,
                       std::vector<int>* labels, std::uint64_t seed) {
  Rng rng(seed);
  *images = Tensor({n, 2, hw, hw});
  labels->resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    (*labels)[static_cast<std::size_t>(i)] = label;
    for (std::int64_t c = 0; c < 2; ++c) {
      for (std::int64_t y = 0; y < hw; ++y) {
        for (std::int64_t x = 0; x < hw; ++x) {
          float v = static_cast<float>(rng.normal(0.0, 0.3));
          if (label == 1) {
            const auto dy = static_cast<double>(y - hw / 2);
            const auto dx = static_cast<double>(x - hw / 2);
            if (dy * dy + dx * dx < static_cast<double>(hw * hw) / 16.0) {
              v += 1.5f;
            }
          }
          images->at(i, c, y, x) = v;
        }
      }
    }
  }
}

Sequential make_small_cnn(Rng& rng) {
  Sequential net;
  net.emplace<Conv2d>(2, 4, 3, 1, 1, false, rng);
  net.emplace<BatchNorm2d>(4);
  net.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(4, 2, rng);
  return net;
}

TEST(GatherBatchTest, CopiesSelectedRows) {
  Tensor images({3, 1, 2, 2});
  for (std::int64_t i = 0; i < images.numel(); ++i)
    images[i] = static_cast<float>(i);
  const Tensor b = gather_batch(images, {2, 0});
  EXPECT_EQ(b.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(b.at(0, 0, 0, 0), 8.0f);
  EXPECT_FLOAT_EQ(b.at(1, 0, 0, 0), 0.0f);
}

TEST(GatherBatchTest, RejectsOutOfRangeIndex) {
  Tensor images({2, 1, 2, 2});
  EXPECT_THROW(gather_batch(images, {2}), InvalidArgument);
  EXPECT_THROW(gather_batch(images, {-1}), InvalidArgument);
}

TEST(TrainerTest, LearnsSeparableBlobs) {
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(64, 8, &images, &labels, 7);
  Rng rng(1);
  Sequential net = make_small_cnn(rng);
  TrainOptions opt;
  opt.epochs = 20;
  opt.batch_size = 8;
  opt.lr = 0.05;
  opt.seed = 3;
  const FitResult fr = fit(net, images, labels, opt);
  ASSERT_EQ(fr.epoch_loss.size(), 20u);
  // Loss decreased substantially and final train accuracy is high.
  EXPECT_LT(fr.epoch_loss.back(), fr.epoch_loss.front());
  const double acc = evaluate_accuracy(net, images, labels);
  EXPECT_GT(acc, 0.9);
}

TEST(TrainerTest, IsDeterministicGivenSeeds) {
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(32, 6, &images, &labels, 11);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 8;
  opt.seed = 5;
  Rng r1(2), r2(2);
  Sequential n1 = make_small_cnn(r1);
  Sequential n2 = make_small_cnn(r2);
  const FitResult a = fit(n1, images, labels, opt);
  const FitResult b = fit(n2, images, labels, opt);
  ASSERT_EQ(a.epoch_loss.size(), b.epoch_loss.size());
  for (std::size_t i = 0; i < a.epoch_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epoch_loss[i], b.epoch_loss[i]);
  }
}

TEST(TrainerTest, EvaluateAccuracyBatchesCorrectly) {
  // Accuracy must not depend on the evaluation batch size.
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(20, 6, &images, &labels, 13);
  Rng rng(3);
  Sequential net = make_small_cnn(rng);
  TrainOptions opt;
  opt.epochs = 5;
  opt.batch_size = 4;
  fit(net, images, labels, opt);
  const double a1 = evaluate_accuracy(net, images, labels, 1);
  const double a7 = evaluate_accuracy(net, images, labels, 7);
  const double a32 = evaluate_accuracy(net, images, labels, 32);
  EXPECT_DOUBLE_EQ(a1, a7);
  EXPECT_DOUBLE_EQ(a7, a32);
}

TEST(TrainerTest, RejectsInvalidInputs) {
  Tensor images({4, 1, 4, 4});
  std::vector<int> labels = {0, 1, 0, 1};
  Rng rng(4);
  Sequential net;
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(1, 2, rng);
  TrainOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(fit(net, images, labels, opt), InvalidArgument);
  opt.epochs = 1;
  std::vector<int> short_labels = {0, 1};
  EXPECT_THROW(fit(net, images, short_labels, opt), InvalidArgument);
  EXPECT_THROW(evaluate_accuracy(net, images, short_labels), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nn
