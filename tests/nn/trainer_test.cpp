#include "dcnas/nn/trainer.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/rng.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/nn/activations.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/nn/linear.hpp"
#include "dcnas/nn/pooling.hpp"
#include "dcnas/nn/sequential.hpp"

namespace dcnas::nn {
namespace {

/// Tiny synthetic image task: class 1 images have a bright center blob,
/// class 0 images are noise. Easily separable, so a small CNN must learn it.
void make_blob_dataset(std::int64_t n, std::int64_t hw, Tensor* images,
                       std::vector<int>* labels, std::uint64_t seed) {
  Rng rng(seed);
  *images = Tensor({n, 2, hw, hw});
  labels->resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    (*labels)[static_cast<std::size_t>(i)] = label;
    for (std::int64_t c = 0; c < 2; ++c) {
      for (std::int64_t y = 0; y < hw; ++y) {
        for (std::int64_t x = 0; x < hw; ++x) {
          float v = static_cast<float>(rng.normal(0.0, 0.3));
          if (label == 1) {
            const auto dy = static_cast<double>(y - hw / 2);
            const auto dx = static_cast<double>(x - hw / 2);
            if (dy * dy + dx * dx < static_cast<double>(hw * hw) / 16.0) {
              v += 1.5f;
            }
          }
          images->at(i, c, y, x) = v;
        }
      }
    }
  }
}

Sequential make_small_cnn(Rng& rng) {
  Sequential net;
  net.emplace<Conv2d>(2, 4, 3, 1, 1, false, rng);
  net.emplace<BatchNorm2d>(4);
  net.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(4, 2, rng);
  return net;
}

TEST(GatherBatchTest, CopiesSelectedRows) {
  Tensor images({3, 1, 2, 2});
  for (std::int64_t i = 0; i < images.numel(); ++i)
    images[i] = static_cast<float>(i);
  const Tensor b = gather_batch(images, {2, 0});
  EXPECT_EQ(b.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(b.at(0, 0, 0, 0), 8.0f);
  EXPECT_FLOAT_EQ(b.at(1, 0, 0, 0), 0.0f);
}

TEST(GatherBatchTest, RejectsOutOfRangeIndex) {
  Tensor images({2, 1, 2, 2});
  EXPECT_THROW(gather_batch(images, {2}), InvalidArgument);
  EXPECT_THROW(gather_batch(images, {-1}), InvalidArgument);
}

TEST(TrainerTest, LearnsSeparableBlobs) {
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(64, 8, &images, &labels, 7);
  Rng rng(1);
  Sequential net = make_small_cnn(rng);
  TrainOptions opt;
  opt.epochs = 20;
  opt.batch_size = 8;
  opt.lr = 0.05;
  opt.seed = 3;
  const FitResult fr = fit(net, images, labels, opt);
  ASSERT_EQ(fr.epoch_loss.size(), 20u);
  // Loss decreased substantially and final train accuracy is high.
  EXPECT_LT(fr.epoch_loss.back(), fr.epoch_loss.front());
  const double acc = evaluate_accuracy(net, images, labels);
  EXPECT_GT(acc, 0.9);
}

TEST(TrainerTest, IsDeterministicGivenSeeds) {
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(32, 6, &images, &labels, 11);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 8;
  opt.seed = 5;
  Rng r1(2), r2(2);
  Sequential n1 = make_small_cnn(r1);
  Sequential n2 = make_small_cnn(r2);
  const FitResult a = fit(n1, images, labels, opt);
  const FitResult b = fit(n2, images, labels, opt);
  ASSERT_EQ(a.epoch_loss.size(), b.epoch_loss.size());
  for (std::size_t i = 0; i < a.epoch_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epoch_loss[i], b.epoch_loss[i]);
  }
}

TEST(TrainerTest, EvaluateAccuracyBatchesCorrectly) {
  // Accuracy must not depend on the evaluation batch size.
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(20, 6, &images, &labels, 13);
  Rng rng(3);
  Sequential net = make_small_cnn(rng);
  TrainOptions opt;
  opt.epochs = 5;
  opt.batch_size = 4;
  fit(net, images, labels, opt);
  const double a1 = evaluate_accuracy(net, images, labels, 1);
  const double a7 = evaluate_accuracy(net, images, labels, 7);
  const double a32 = evaluate_accuracy(net, images, labels, 32);
  EXPECT_DOUBLE_EQ(a1, a7);
  EXPECT_DOUBLE_EQ(a7, a32);
}

TEST(TrainerTest, EvaluateAccuracyRestoresPriorTrainingMode) {
  // Regression: evaluate_accuracy used to end with set_training(true)
  // unconditionally, silently flipping eval-only models (e.g. one being
  // benchmarked or served between evaluations) back into training mode.
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(8, 6, &images, &labels, 17);
  Rng rng(5);
  Sequential net = make_small_cnn(rng);

  net.set_training(false);
  evaluate_accuracy(net, images, labels);
  EXPECT_FALSE(net.training()) << "eval-only model flipped into training";

  net.set_training(true);
  evaluate_accuracy(net, images, labels);
  EXPECT_TRUE(net.training()) << "training-mode model lost its mode";
}

TEST(TrainerTest, EpochStatsAreSampleWeighted) {
  // With a vanishing learning rate (1e-30 passes the lr > 0 check but is
  // far below float32 resolution, so weights stay bitwise unchanged) and no
  // batch-coupled layers, per-sample losses are independent of batch
  // composition: the epoch loss must equal the dataset mean regardless of
  // batch size — per-batch averaging would overweight the trailing partial
  // batch (10 = 4 + 4 + 2).
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(10, 6, &images, &labels, 23);
  Rng rng(9);
  Sequential net;
  net.emplace<Conv2d>(2, 4, 3, 1, 1, true, rng);
  net.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(4, 2, rng);

  TrainOptions opt;
  opt.epochs = 1;
  opt.lr = 1e-30;
  opt.momentum = 0.0;
  opt.weight_decay = 0.0;
  opt.shuffle = false;
  opt.batch_size = 4;
  const FitResult partial = fit(net, images, labels, opt);
  opt.batch_size = 10;
  const FitResult full = fit(net, images, labels, opt);
  ASSERT_EQ(partial.epoch_loss.size(), 1u);
  EXPECT_NEAR(partial.epoch_loss[0], full.epoch_loss[0], 1e-6);
  EXPECT_NEAR(partial.epoch_accuracy[0], full.epoch_accuracy[0], 1e-12);
}

TEST(TrainerTest, RecordsDroppedTrailingSamples) {
  // 9 samples at batch 4 leaves a trailing single sample, which BatchNorm
  // semantics force fit() to drop; the nn.train metrics must account for it.
  Tensor images;
  std::vector<int> labels;
  make_blob_dataset(9, 6, &images, &labels, 29);
  Rng rng(11);
  Sequential net = make_small_cnn(rng);
  const auto* dropped =
      obs::MetricsRegistry::global().find_counter("nn.train.samples.dropped");
  const std::int64_t before = dropped ? dropped->value() : 0;
  TrainOptions opt;
  opt.epochs = 2;
  opt.batch_size = 4;
  fit(net, images, labels, opt);
  dropped =
      obs::MetricsRegistry::global().find_counter("nn.train.samples.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value() - before, 2) << "one dropped sample per epoch";
  const auto* seen =
      obs::MetricsRegistry::global().find_counter("nn.train.samples.count");
  ASSERT_NE(seen, nullptr);
  EXPECT_GE(seen->value(), 16);
}

TEST(TrainerTest, RejectsInvalidInputs) {
  Tensor images({4, 1, 4, 4});
  std::vector<int> labels = {0, 1, 0, 1};
  Rng rng(4);
  Sequential net;
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(1, 2, rng);
  TrainOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(fit(net, images, labels, opt), InvalidArgument);
  opt.epochs = 1;
  std::vector<int> short_labels = {0, 1};
  EXPECT_THROW(fit(net, images, short_labels, opt), InvalidArgument);
  EXPECT_THROW(evaluate_accuracy(net, images, short_labels), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nn
