#include "dcnas/nn/resnet.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/rng.hpp"

namespace dcnas::nn {
namespace {

TEST(ResNetConfigTest, BaselineMatchesPaperFigure1) {
  const auto c = ResNetConfig::baseline(5);
  EXPECT_EQ(c.in_channels, 5);
  EXPECT_EQ(c.conv1_kernel, 7);
  EXPECT_EQ(c.conv1_stride, 2);
  EXPECT_EQ(c.conv1_padding, 3);
  EXPECT_TRUE(c.with_pool);
  EXPECT_EQ(c.pool_kernel, 3);
  EXPECT_EQ(c.pool_stride, 2);
  EXPECT_EQ(c.init_width, 64);
  EXPECT_EQ(c.num_classes, 2);
  EXPECT_NO_THROW(c.validate());
}

TEST(ResNetConfigTest, StageWidthsDouble) {
  ResNetConfig c;
  c.init_width = 32;
  EXPECT_EQ(c.stage_width(0), 32);
  EXPECT_EQ(c.stage_width(1), 64);
  EXPECT_EQ(c.stage_width(2), 128);
  EXPECT_EQ(c.stage_width(3), 256);
  EXPECT_EQ(c.fc_in_features(), 256);
}

TEST(ResNetConfigTest, ValidateRejectsOutOfSpaceValues) {
  ResNetConfig c = ResNetConfig::baseline(5);
  c.in_channels = 4;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = ResNetConfig::baseline(5);
  c.conv1_kernel = 4;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = ResNetConfig::baseline(5);
  c.conv1_padding = 5;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = ResNetConfig::baseline(5);
  c.init_width = 40;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = ResNetConfig::baseline(5);
  c.blocks_per_stage = 4;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = ResNetConfig::baseline(5);
  c.num_classes = 1;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(ResNetConfigTest, ValidateAcceptsWideLatticeValues) {
  // Wide-lattice extensions (SearchSpaceSpec::wide) are legal builds.
  ResNetConfig c = ResNetConfig::baseline(5);
  c.conv1_kernel = 1;
  c.conv1_padding = 0;
  c.init_width = 24;
  c.pool_kernel = 4;
  c.blocks_per_stage = 3;
  EXPECT_NO_THROW(c.validate());
}

TEST(ResNetTest, BlocksPerStageScalesParamCount) {
  Rng rng(5);
  ResNetConfig shallow = ResNetConfig::baseline(5);
  shallow.blocks_per_stage = 1;
  ResNetConfig deep = ResNetConfig::baseline(5);
  deep.blocks_per_stage = 3;
  ConfigurableResNet m10(shallow, rng);
  ConfigurableResNet m18(ResNetConfig::baseline(5), rng);
  ConfigurableResNet m26(deep, rng);
  EXPECT_LT(m10.num_params(), m18.num_params());
  EXPECT_LT(m18.num_params(), m26.num_params());
  // Each extra block is stride-1 same-channel: no projection shortcut, so
  // the stage-wise increments are symmetric around ResNet-18.
  EXPECT_EQ(m18.num_params() - m10.num_params(),
            m26.num_params() - m18.num_params());
}

TEST(ResNetTest, BlocksPerStageForwardBackwardShapes) {
  for (std::int64_t blocks : {1, 3}) {
    Rng rng(6);
    ResNetConfig c = ResNetConfig::baseline(5);
    c.blocks_per_stage = blocks;
    c.init_width = 32;
    c.conv1_kernel = 3;
    c.conv1_padding = 1;
    ConfigurableResNet model(c, rng);
    const Tensor x = Tensor::rand_uniform({2, 5, 48, 48}, rng, -1.0f, 1.0f);
    const Tensor y = model.forward(x);
    ASSERT_EQ(y.shape(), (Shape{2, 2}));
    const Tensor gx = model.backward(Tensor::full({2, 2}, 0.1f));
    EXPECT_TRUE(gx.same_shape(x));
  }
}

TEST(ResNetTest, BaselineParamCountMatchesTorchvisionDerivation) {
  // torchvision resnet18 (3ch, 1000 classes) has 11,689,512 parameters.
  // Swapping conv1 to 5 input channels (+6,272) and the fc to 2 classes
  // (-511,974) gives 11,183,810 — which x4 bytes is the paper's ~44.7 MB.
  Rng rng(1);
  ConfigurableResNet model(ResNetConfig::baseline(5), rng);
  EXPECT_EQ(model.num_params(), 11'183'810);
}

TEST(ResNetTest, SevenChannelAddsOnlyConv1Params) {
  Rng rng(1);
  ConfigurableResNet m5(ResNetConfig::baseline(5), rng);
  ConfigurableResNet m7(ResNetConfig::baseline(7), rng);
  EXPECT_EQ(m7.num_params() - m5.num_params(), 2 * 64 * 7 * 7);
}

TEST(ResNetTest, Width32IsRoughlyQuarterSize) {
  Rng rng(1);
  ResNetConfig small = ResNetConfig::baseline(5);
  small.init_width = 32;
  small.conv1_kernel = 3;
  small.conv1_padding = 1;
  ConfigurableResNet m32(small, rng);
  ConfigurableResNet m64(ResNetConfig::baseline(5), rng);
  const double ratio = static_cast<double>(m32.num_params()) /
                       static_cast<double>(m64.num_params());
  EXPECT_NEAR(ratio, 0.25, 0.01);
}

TEST(ResNetTest, ForwardShapesBaseline) {
  Rng rng(2);
  ConfigurableResNet model(ResNetConfig::baseline(5), rng);
  model.set_training(false);
  const Tensor y = model.forward(Tensor({1, 5, 64, 64}));
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
}

struct ArchCase {
  std::int64_t kernel, stride, padding;
  bool pool;
  std::int64_t pool_kernel, pool_stride, width;
};

class ResNetArchTest : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ResNetArchTest, ForwardAndBackwardRunForSearchSpacePoints) {
  const auto a = GetParam();
  ResNetConfig c;
  c.in_channels = 5;
  c.conv1_kernel = a.kernel;
  c.conv1_stride = a.stride;
  c.conv1_padding = a.padding;
  c.with_pool = a.pool;
  c.pool_kernel = a.pool_kernel;
  c.pool_stride = a.pool_stride;
  c.init_width = a.width;
  Rng rng(3);
  ConfigurableResNet model(c, rng);
  const Tensor x = Tensor::rand_uniform({2, 5, 48, 48}, rng, -1.0f, 1.0f);
  const Tensor y = model.forward(x);
  ASSERT_EQ(y.shape(), (Shape{2, 2}));
  const Tensor gx = model.backward(Tensor::full({2, 2}, 0.1f));
  EXPECT_TRUE(gx.same_shape(x));
  // Gradients reached conv1.
  double gsum = 0.0;
  for (auto& p : model.parameters()) gsum += std::abs(p.grad->sum());
  EXPECT_GT(gsum, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SearchSpaceCorners, ResNetArchTest,
    ::testing::Values(ArchCase{3, 2, 1, true, 3, 2, 32},   // Table 4 winner
                      ArchCase{3, 2, 1, false, 3, 2, 32},  // no-pool winner
                      ArchCase{7, 1, 3, true, 2, 1, 48},
                      ArchCase{3, 1, 3, false, 2, 2, 64},
                      ArchCase{7, 2, 2, true, 2, 2, 48}));

TEST(ResNetTest, SummaryListsAllStages) {
  Rng rng(4);
  ConfigurableResNet model(ResNetConfig::baseline(7), rng);
  const std::string s = model.summary(224);
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("maxpool"), std::string::npos);
  EXPECT_NE(s.find("stage4"), std::string::npos);
  EXPECT_NE(s.find("(64, 112, 112)"), std::string::npos);
  EXPECT_NE(s.find("(64, 56, 56)"), std::string::npos);
  EXPECT_NE(s.find("(512, 7, 7)"), std::string::npos);
}

TEST(ResNetTest, DeterministicInitPerSeed) {
  Rng r1(9), r2(9);
  ConfigurableResNet a(ResNetConfig::baseline(5), r1);
  ConfigurableResNet b(ResNetConfig::baseline(5), r2);
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].value->numel(), pb[i].value->numel());
    for (std::int64_t j = 0; j < pa[i].value->numel(); ++j) {
      ASSERT_EQ((*pa[i].value)[j], (*pb[i].value)[j]) << pa[i].name;
    }
  }
}

}  // namespace
}  // namespace dcnas::nn
