/// Finite-difference gradient verification for every trainable layer.
/// For a module M and a fixed random cotangent G, define
///   L(x, theta) = <M(x; theta), G>.
/// Then backward(G) must return dL/dx and accumulate dL/dtheta, both of
/// which we compare against central differences.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/nn/linear.hpp"
#include "dcnas/nn/residual.hpp"
#include "dcnas/nn/sequential.hpp"

namespace dcnas::nn {
namespace {

double dot(const Tensor& a, const Tensor& b) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(a[i]) * b[i];
  return s;
}

/// Checks input and parameter gradients of \p module at \p input.
void check_gradients(Module& module, Tensor input, double eps, double tol) {
  Rng rng(99);
  module.set_training(true);
  module.zero_grad();
  Tensor out = module.forward(input);
  const Tensor cotangent = Tensor::rand_uniform(out.shape(), rng, -1.0f, 1.0f);
  const Tensor grad_input = module.backward(cotangent);
  ASSERT_TRUE(grad_input.same_shape(input));

  auto loss_at = [&](const Tensor& x) {
    return dot(module.forward(x), cotangent);
  };

  // Input gradient: probe a deterministic subset to keep runtime low.
  const std::int64_t n_in = input.numel();
  const std::int64_t step_in = std::max<std::int64_t>(1, n_in / 24);
  for (std::int64_t i = 0; i < n_in; i += step_in) {
    Tensor xp = input, xm = input;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    const double ana = grad_input[i];
    ASSERT_NEAR(ana, num, tol * std::max(1.0, std::abs(num)))
        << "input grad mismatch at flat index " << i;
  }

  // Parameter gradients. Note forward(input) refreshes internal caches, so
  // re-run backward once after the probing loop would be wrong; we captured
  // analytic grads up front instead.
  for (auto& p : module.parameters()) {
    Tensor analytic = *p.grad;  // copy before we mutate state
    const std::int64_t n_par = p.value->numel();
    const std::int64_t step = std::max<std::int64_t>(1, n_par / 12);
    for (std::int64_t i = 0; i < n_par; i += step) {
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + static_cast<float>(eps);
      const double lp = loss_at(input);
      (*p.value)[i] = orig - static_cast<float>(eps);
      const double lm = loss_at(input);
      (*p.value)[i] = orig;
      const double num = (lp - lm) / (2.0 * eps);
      ASSERT_NEAR(analytic[i], num, tol * std::max(1.0, std::abs(num)))
          << "param grad mismatch in " << p.name << " index " << i;
    }
  }
}

TEST(GradCheck, Conv2dStride1) {
  Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  const Tensor x = Tensor::rand_uniform({2, 2, 5, 5}, rng, -1.0f, 1.0f);
  check_gradients(conv, x, 1e-2, 2e-2);
}

TEST(GradCheck, Conv2dStride2NoBias) {
  Rng rng(2);
  Conv2d conv(3, 4, 3, 2, 1, /*bias=*/false, rng);
  const Tensor x = Tensor::rand_uniform({2, 3, 6, 6}, rng, -1.0f, 1.0f);
  check_gradients(conv, x, 1e-2, 2e-2);
}

TEST(GradCheck, Conv2dLargeKernelLargePadding) {
  Rng rng(3);
  Conv2d conv(1, 2, 7, 2, 3, /*bias=*/false, rng);
  const Tensor x = Tensor::rand_uniform({1, 1, 9, 9}, rng, -1.0f, 1.0f);
  check_gradients(conv, x, 1e-2, 2e-2);
}

TEST(GradCheck, Conv2dStride2PaddingHalfKernel) {
  // stride 2 with padding == kernel/2: the downsampling geometry used by
  // every NAS stage transition. Locks forward/backward behavior against the
  // packed-GEMM substrate (fused forward, grouped-reduction backward).
  Rng rng(21);
  Conv2d conv(2, 3, 5, 2, 2, /*bias=*/true, rng);
  const Tensor x = Tensor::rand_uniform({2, 2, 9, 9}, rng, -1.0f, 1.0f);
  check_gradients(conv, x, 1e-2, 2e-2);
}

TEST(GradCheck, Conv2dStride2PaddingAboveHalfKernel) {
  Rng rng(22);
  Conv2d conv(3, 2, 3, 2, 2, /*bias=*/false, rng);
  const Tensor x = Tensor::rand_uniform({2, 3, 7, 7}, rng, -1.0f, 1.0f);
  check_gradients(conv, x, 1e-2, 2e-2);
}

TEST(GradCheck, Conv2dPaddingEqualsKernel) {
  // The NAS space pairs kernel 3 with padding 3 (allowed for conv).
  Rng rng(4);
  Conv2d conv(2, 2, 3, 2, 3, /*bias=*/false, rng);
  const Tensor x = Tensor::rand_uniform({1, 2, 5, 5}, rng, -1.0f, 1.0f);
  check_gradients(conv, x, 1e-2, 2e-2);
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(5);
  BatchNorm2d bn(3);
  // Scale/shift the input so batch statistics are non-trivial.
  Tensor x = Tensor::rand_uniform({4, 3, 3, 3}, rng, -2.0f, 2.0f);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = x[i] * 1.7f + 0.3f;
  check_gradients(bn, x, 1e-2, 5e-2);
}

TEST(GradCheck, Linear) {
  Rng rng(6);
  Linear fc(7, 4, rng);
  const Tensor x = Tensor::rand_uniform({3, 7}, rng, -1.0f, 1.0f);
  check_gradients(fc, x, 1e-2, 2e-2);
}

TEST(GradCheck, BasicBlockIdentityShortcut) {
  Rng rng(7);
  BasicBlock block(4, 4, 1, rng);
  const Tensor x = Tensor::rand_uniform({2, 4, 5, 5}, rng, -1.0f, 1.0f);
  // Composite blocks accumulate fp32 roundoff through two BN layers and two
  // ReLU kinks, so the tolerance is looser than for single layers.
  check_gradients(block, x, 1e-2, 9e-2);
}

TEST(GradCheck, BasicBlockProjectionShortcut) {
  Rng rng(8);
  BasicBlock block(3, 6, 2, rng);
  const Tensor x = Tensor::rand_uniform({2, 3, 6, 6}, rng, -1.0f, 1.0f);
  check_gradients(block, x, 1e-2, 9e-2);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(9);
  Sequential seq;
  seq.emplace<Conv2d>(2, 3, 3, 1, 1, false, rng);
  seq.emplace<BatchNorm2d>(3);
  const Tensor x = Tensor::rand_uniform({3, 2, 4, 4}, rng, -1.0f, 1.0f);
  check_gradients(seq, x, 1e-2, 5e-2);
}

}  // namespace
}  // namespace dcnas::nn
