/// Property sweep: Conv2d (im2col + GEMM) against a direct naive
/// convolution over the full geometry grid the NAS search space touches.

#include <gtest/gtest.h>

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas::nn {
namespace {

Tensor naive_conv(const Tensor& x, const Tensor& weight, std::int64_t oc,
                  std::int64_t k, std::int64_t s, std::int64_t p) {
  const std::int64_t n = x.dim(0), ic = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = conv_out_size(h, k, s, p);
  const std::int64_t ow = conv_out_size(w, k, s, p);
  Tensor out({n, oc, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t o = 0; o < oc; ++o) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < ic; ++c) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy = y * s - p + ky;
                const std::int64_t ix = xo * s - p + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(x.at(b, c, iy, ix)) *
                       weight[((o * ic + c) * k + ky) * k + kx];
              }
            }
          }
          out.at(b, o, y, xo) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

struct ConvCase {
  std::int64_t ic, oc, hw, k, s, p;
};

class ConvReferenceSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvReferenceSweep, MatchesDirectConvolution) {
  const auto g = GetParam();
  Rng rng(static_cast<std::uint64_t>(g.ic * 131 + g.oc * 17 + g.k * 3 +
                                     g.s + g.p));
  Conv2d conv(g.ic, g.oc, g.k, g.s, g.p, /*bias=*/false, rng);
  const Tensor x =
      Tensor::rand_uniform({2, g.ic, g.hw, g.hw}, rng, -1.0f, 1.0f);
  const Tensor fast = conv.forward(x);
  const Tensor ref = naive_conv(x, conv.weight(), g.oc, g.k, g.s, g.p);
  ASSERT_TRUE(fast.same_shape(ref));
  for (std::int64_t i = 0; i < fast.numel(); ++i) {
    ASSERT_NEAR(fast[i], ref[i], 1e-4f) << "flat index " << i;
  }
}

// The stem geometries the NAS search space can produce (kernel x stride x
// padding), plus 1x1 projections and the 3x3 block bodies.
INSTANTIATE_TEST_SUITE_P(
    SearchSpaceGeometries, ConvReferenceSweep,
    ::testing::Values(ConvCase{5, 8, 12, 3, 1, 1}, ConvCase{5, 8, 12, 3, 2, 1},
                      ConvCase{5, 8, 12, 3, 1, 2}, ConvCase{5, 8, 12, 3, 2, 3},
                      ConvCase{7, 8, 13, 7, 1, 1}, ConvCase{7, 8, 13, 7, 2, 2},
                      ConvCase{7, 8, 13, 7, 2, 3}, ConvCase{4, 6, 9, 1, 1, 0},
                      ConvCase{4, 6, 9, 1, 2, 0}, ConvCase{3, 5, 10, 3, 1, 3},
                      ConvCase{6, 4, 8, 2, 2, 1}));

}  // namespace
}  // namespace dcnas::nn
