#include <gtest/gtest.h>

#include <cmath>

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/linear.hpp"
#include "dcnas/nn/loss.hpp"
#include "dcnas/nn/optim.hpp"

namespace dcnas::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({4, 2});
  const double l = loss.forward(logits, {0, 1, 0, 1});
  EXPECT_NEAR(l, std::log(2.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::from_values({1, 2}, {20.0f, -20.0f});
  EXPECT_NEAR(loss.forward(logits, {0}), 0.0, 1e-6);
  EXPECT_GT(loss.forward(logits, {1}), 10.0);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbsMinusOnehotOverN) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::from_values({2, 2}, {0, 0, 0, 0});
  loss.forward(logits, {0, 1});
  const Tensor g = loss.backward();
  EXPECT_NEAR(g.at(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(g.at(0, 1), 0.5 / 2.0, 1e-6);
  EXPECT_NEAR(g.at(1, 1), (0.5 - 1.0) / 2.0, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(12);
  Tensor logits = Tensor::rand_uniform({3, 4}, rng, -1.0f, 1.0f);
  const std::vector<int> labels = {2, 0, 3};
  loss.forward(logits, labels);
  const Tensor g = loss.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    SoftmaxCrossEntropy l2;
    const double num = (l2.forward(lp, labels) - l2.forward(lm, labels)) / (2 * eps);
    EXPECT_NEAR(g[i], num, 1e-3);
  }
}

TEST(SoftmaxCrossEntropyTest, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({2, 2});
  EXPECT_THROW(loss.forward(logits, {0, 2}), InvalidArgument);
  EXPECT_THROW(loss.forward(logits, {0}), InvalidArgument);
  SoftmaxCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), InvalidArgument);
}

/// Quadratic bowl fixture: minimize ||w - target||² by hand-feeding
/// gradients; any reasonable optimizer must converge.
class OptimBowl {
 public:
  explicit OptimBowl(float start) {
    w_ = Tensor::full({4}, start);
    g_ = Tensor({4});
    target_ = Tensor::from_values({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  }
  std::vector<ParamRef> params() { return {{"w", &w_, &g_}}; }
  void fill_grad() {
    for (std::int64_t i = 0; i < 4; ++i) g_[i] = 2.0f * (w_[i] - target_[i]);
  }
  double distance() const {
    double d = 0.0;
    for (std::int64_t i = 0; i < 4; ++i) {
      d += static_cast<double>(w_[i] - target_[i]) * (w_[i] - target_[i]);
    }
    return std::sqrt(d);
  }

 private:
  Tensor w_, g_, target_;
  friend class OptimizersConvergeTest;
};

TEST(SgdTest, ConvergesOnQuadratic) {
  OptimBowl bowl(10.0f);
  Sgd opt(bowl.params(), 0.05, 0.9, 0.0);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    bowl.fill_grad();
    opt.step();
  }
  EXPECT_LT(bowl.distance(), 1e-3);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::full({1}, 4.0f);
  Tensor g({1});
  Sgd opt({{"w", &w, &g}}, 0.1, 0.0, 0.5);
  for (int i = 0; i < 100; ++i) opt.step();  // zero loss gradient
  EXPECT_LT(std::abs(w[0]), 0.1f);
}

TEST(SgdTest, MomentumAcceleratesFirstSteps) {
  Tensor w1 = Tensor::full({1}, 1.0f), g1 = Tensor::full({1}, 1.0f);
  Tensor w2 = Tensor::full({1}, 1.0f), g2 = Tensor::full({1}, 1.0f);
  Sgd plain({{"w", &w1, &g1}}, 0.1, 0.0, 0.0);
  Sgd heavy({{"w", &w2, &g2}}, 0.1, 0.9, 0.0);
  for (int i = 0; i < 5; ++i) {
    plain.step();
    heavy.step();
  }
  EXPECT_LT(w2[0], w1[0]);  // momentum walked farther along constant slope
}

TEST(SgdTest, RejectsBadHyperparameters) {
  Tensor w({1}), g({1});
  std::vector<ParamRef> p = {{"w", &w, &g}};
  EXPECT_THROW(Sgd(p, 0.0), InvalidArgument);
  EXPECT_THROW(Sgd(p, 0.1, 1.0), InvalidArgument);
  EXPECT_THROW(Sgd(p, 0.1, 0.5, -1.0), InvalidArgument);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  OptimBowl bowl(10.0f);
  Adam opt(bowl.params(), 0.3);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    bowl.fill_grad();
    opt.step();
  }
  EXPECT_LT(bowl.distance(), 1e-2);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction the very first Adam step is ~lr in magnitude.
  Tensor w = Tensor::full({1}, 0.0f);
  Tensor g = Tensor::full({1}, 123.0f);
  Adam opt({{"w", &w, &g}}, 0.01);
  opt.step();
  EXPECT_NEAR(w[0], -0.01f, 1e-4f);
}

TEST(AdamTest, RejectsBadHyperparameters) {
  Tensor w({1}), g({1});
  std::vector<ParamRef> p = {{"w", &w, &g}};
  EXPECT_THROW(Adam(p, -0.1), InvalidArgument);
  EXPECT_THROW(Adam(p, 0.1, 1.0), InvalidArgument);
  EXPECT_THROW(Adam(p, 0.1, 0.9, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nn
