#include <gtest/gtest.h>

#include <cmath>

#include "dcnas/common/rng.hpp"
#include "dcnas/nn/activations.hpp"
#include "dcnas/nn/batchnorm.hpp"
#include "dcnas/nn/conv.hpp"
#include "dcnas/nn/linear.hpp"
#include "dcnas/nn/pooling.hpp"
#include "dcnas/nn/residual.hpp"
#include "dcnas/nn/sequential.hpp"

namespace dcnas::nn {
namespace {

TEST(Conv2dTest, OutputShapeMatchesGeometry) {
  Rng rng(1);
  Conv2d conv(5, 64, 7, 2, 3, false, rng);
  const Tensor x({2, 5, 224, 224});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 64, 112, 112}));
}

TEST(Conv2dTest, KnownConvolutionResult) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  conv.weight().fill(1.0f);  // 3x3 box filter
  Tensor x = Tensor::full({1, 1, 3, 3}, 1.0f);
  const Tensor y = conv.forward(x);
  // Center sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0f);
}

TEST(Conv2dTest, BiasIsAdded) {
  Rng rng(1);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.weight().zero();
  conv.bias()[0] = 3.0f;
  conv.bias()[1] = -1.0f;
  const Tensor y = conv.forward(Tensor({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -1.0f);
}

TEST(Conv2dTest, RejectsChannelMismatch) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, false, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 4, 8, 8})), InvalidArgument);
}

TEST(Conv2dTest, RejectsBackwardWithoutForward) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  EXPECT_THROW(conv.backward(Tensor({1, 1, 4, 4})), InvalidArgument);
}

TEST(Conv2dTest, ParamCountAndInit) {
  Rng rng(42);
  Conv2d conv(5, 64, 7, 2, 3, false, rng);
  EXPECT_EQ(conv.num_params(), 64 * 5 * 7 * 7);
  // He init: stddev = sqrt(2 / (64*49)); sample stddev should be close.
  double sumsq = 0.0;
  for (std::int64_t i = 0; i < conv.weight().numel(); ++i) {
    sumsq += static_cast<double>(conv.weight()[i]) * conv.weight()[i];
  }
  const double stddev = std::sqrt(sumsq / static_cast<double>(conv.weight().numel()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / (64.0 * 49.0)), 0.002);
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  BatchNorm2d bn(2);
  Rng rng(3);
  Tensor x = Tensor::rand_uniform({8, 2, 4, 4}, rng, 5.0f, 9.0f);
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sumsq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const float v = y.at(n, c, i / 4, i % 4);
        sum += v;
        sumsq += static_cast<double>(v) * v;
        ++count;
      }
    }
    const double m = sum / count;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(sumsq / count - m * m, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  Rng rng(4);
  // Train on a stream with mean 10, var ~4 so running stats move there.
  for (int step = 0; step < 200; ++step) {
    Tensor x = Tensor::randn({4, 1, 4, 4}, rng, 10.0f, 2.0f);
    bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 10.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.8f);
  bn.set_training(false);
  // An input equal to the running mean maps to ~beta = 0.
  Tensor probe = Tensor::full({1, 1, 2, 2}, bn.running_mean()[0]);
  const Tensor y = bn.forward(probe);
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
}

TEST(BatchNormTest, GammaBetaAffectOutput) {
  BatchNorm2d bn(1);
  bn.gamma()[0] = 2.0f;
  bn.beta()[0] = 5.0f;
  Rng rng(5);
  Tensor x = Tensor::rand_uniform({4, 1, 3, 3}, rng, -1.0f, 1.0f);
  const Tensor y = bn.forward(x);
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) sum += y[i];
  EXPECT_NEAR(sum / static_cast<double>(y.numel()), 5.0, 1e-3);
}

TEST(BatchNormTest, RejectsSingleValueTrainingBatch) {
  BatchNorm2d bn(1);
  EXPECT_THROW(bn.forward(Tensor({1, 1, 1, 1})), InvalidArgument);
}

TEST(ReLULayerTest, ForwardAndBackward) {
  ReLU relu;
  Tensor x = Tensor::from_values({1, 4}, {-1, 2, -3, 4}).reshaped({1, 1, 2, 2});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  Tensor g = Tensor::full({1, 1, 2, 2}, 1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[3], 1.0f);
}

TEST(MaxPoolLayerTest, StemPoolGeometry) {
  MaxPool2d pool(3, 2, 1);
  const Tensor x({1, 64, 112, 112});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 64, 56, 56}));
}

TEST(MaxPoolLayerTest, RejectsOversizedPadding) {
  EXPECT_THROW(MaxPool2d(2, 2, 2), InvalidArgument);
  EXPECT_THROW(MaxPool2d(3, 2, 2), InvalidArgument);
}

TEST(GlobalAvgPoolLayerTest, ReducesToChannels) {
  GlobalAvgPool gap;
  Tensor x = Tensor::full({2, 3, 4, 5}, 2.5f);
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(y.at(1, 2), 2.5f);
}

TEST(LinearTest, KnownAffineMap) {
  Rng rng(6);
  Linear fc(2, 2, rng);
  fc.weight() = Tensor::from_values({2, 2}, {1, 2, 3, 4});
  fc.bias() = Tensor::from_values({2}, {10, 20});
  const Tensor x = Tensor::from_values({1, 2}, {1, 1});
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f);
}

TEST(BasicBlockTest, IdentityBlockPreservesShape) {
  Rng rng(7);
  BasicBlock block(8, 8, 1, rng);
  EXPECT_FALSE(block.has_projection());
  const Tensor y = block.forward(Tensor({2, 8, 10, 10}));
  EXPECT_EQ(y.shape(), (Shape{2, 8, 10, 10}));
}

TEST(BasicBlockTest, DownsamplingBlockHalvesAndWidens) {
  Rng rng(8);
  BasicBlock block(8, 16, 2, rng);
  EXPECT_TRUE(block.has_projection());
  const Tensor y = block.forward(Tensor({2, 8, 10, 10}));
  EXPECT_EQ(y.shape(), (Shape{2, 16, 5, 5}));
}

TEST(BasicBlockTest, OutputIsNonNegativeAfterFinalRelu) {
  Rng rng(9);
  BasicBlock block(4, 4, 1, rng);
  const Tensor x = Tensor::rand_uniform({2, 4, 6, 6}, rng, -2.0f, 2.0f);
  const Tensor y = block.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_GE(y[i], 0.0f);
}

TEST(SequentialTest, ChainsAndCollectsParams) {
  Rng rng(10);
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1, false, rng);
  seq.emplace<BatchNorm2d>(2);
  seq.emplace<ReLU>();
  EXPECT_EQ(seq.size(), 3u);
  const Tensor y = seq.forward(Tensor({2, 1, 4, 4}));
  EXPECT_EQ(y.shape(), (Shape{2, 2, 4, 4}));
  const auto params = seq.parameters();
  // conv weight + bn gamma/beta.
  EXPECT_EQ(params.size(), 3u);
  EXPECT_EQ(seq.num_params(), 2 * 9 + 2 + 2);
  seq.zero_grad();
  for (auto& p : params) EXPECT_DOUBLE_EQ(p.grad->sum(), 0.0);
}

TEST(SequentialTest, SetTrainingPropagates) {
  Rng rng(11);
  Sequential seq;
  auto* bn = seq.emplace<BatchNorm2d>(1);
  seq.set_training(false);
  EXPECT_FALSE(bn->training());
  // Eval-mode BatchNorm accepts a single sample.
  const Tensor y = seq.forward(Tensor({1, 1, 2, 2}));
  EXPECT_EQ(y.numel(), 4);
}

}  // namespace
}  // namespace dcnas::nn
