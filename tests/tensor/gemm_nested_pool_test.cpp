#include "dcnas/tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <vector>

#include "dcnas/common/rng.hpp"
#include "dcnas/common/thread_pool.hpp"

namespace dcnas {
namespace {

/// TSan regression for the two-level scheduler shape: GEMM (whose driver
/// calls parallel_for_chunked) running *inside* a dedicated pool's task.
/// The nested-execution rule must keep this deadlock- and race-free at
/// every budget: budget 1 runs the kernel inline in the pool worker,
/// a raised budget fans row panels out onto the global pool.
class GemmNestedPoolTest : public ::testing::Test {
 protected:
  static std::vector<float> random_matrix(std::int64_t elems,
                                          std::uint64_t seed) {
    Rng rng(seed);
    std::vector<float> m(static_cast<std::size_t>(elems));
    for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return m;
  }
};

TEST_F(GemmNestedPoolTest, GemmInsidePoolTaskMatchesSerialBitwise) {
  constexpr std::int64_t kN = 48;
  const auto a = random_matrix(kN * kN, 1);
  const auto b = random_matrix(kN * kN, 2);

  std::vector<float> serial(static_cast<std::size_t>(kN * kN), 0.0f);
  gemm(kN, kN, kN, 1.0f, a.data(), b.data(), 0.0f, serial.data());

  ThreadPool pool(4);
  std::vector<std::vector<float>> results(
      8, std::vector<float>(static_cast<std::size_t>(kN * kN), 0.0f));
  std::vector<std::future<void>> done;
  for (auto& out : results) {
    done.push_back(pool.submit([&a, &b, &out] {
      gemm(kN, kN, kN, 1.0f, a.data(), b.data(), 0.0f, out.data());
    }));
  }
  for (auto& f : done) f.get();
  for (const auto& out : results) EXPECT_EQ(out, serial);
}

TEST_F(GemmNestedPoolTest, RaisedKernelBudgetStaysCorrectAndDeterministic) {
  constexpr std::int64_t kN = 64;
  const auto a = random_matrix(kN * kN, 3);
  const auto b = random_matrix(kN * kN, 4);

  std::vector<float> serial(static_cast<std::size_t>(kN * kN), 0.0f);
  gemm(kN, kN, kN, 1.0f, a.data(), b.data(), 0.0f, serial.data());

  // Concurrent pool tasks each running a budgeted (fan-out-capable) GEMM —
  // the exact shape of scheduler fold tasks with kernel_threads_per_trial>1.
  ThreadPool pool(3);
  std::vector<std::vector<float>> results(
      6, std::vector<float>(static_cast<std::size_t>(kN * kN), 0.0f));
  std::vector<std::future<void>> done;
  for (auto& out : results) {
    done.push_back(pool.submit([&a, &b, &out] {
      KernelBudgetScope budget(2);
      gemm(kN, kN, kN, 1.0f, a.data(), b.data(), 0.0f, out.data());
    }));
  }
  for (auto& f : done) f.get();
  for (const auto& out : results) EXPECT_EQ(out, serial);
}

}  // namespace
}  // namespace dcnas
