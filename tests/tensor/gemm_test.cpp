#include "dcnas/tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dcnas/common/rng.hpp"

namespace dcnas {
namespace {

/// Naive reference GEMM for cross-checking.
void ref_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

TEST(GemmTest, SmallHandComputedCase) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4] = {0, 0, 0, 0};
  gemm(2, 2, 2, 1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(GemmTest, AlphaBetaSemantics) {
  const float a[] = {1, 0, 0, 1};  // identity
  const float b[] = {2, 3, 4, 5};
  float c[] = {10, 10, 10, 10};
  gemm(2, 2, 2, 2.0f, a, b, 0.5f, c);
  EXPECT_FLOAT_EQ(c[0], 2 * 2 + 5);
  EXPECT_FLOAT_EQ(c[3], 2 * 5 + 5);
}

struct GemmDims {
  std::int64_t m, n, k;
};

class GemmRandomTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmRandomTest, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k));
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.5f);
  std::vector<float> c_ref = c;
  gemm(m, n, k, 1.3f, a.data(), b.data(), 0.7f, c.data());
  ref_gemm(m, n, k, 1.3f, a.data(), b.data(), 0.7f, c_ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmRandomTest,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                      GemmDims{17, 4, 33}, GemmDims{64, 64, 64},
                      GemmDims{130, 9, 257},  // crosses kBlockM / kBlockK
                      GemmDims{256, 16, 512}, GemmDims{1, 100, 3},
                      GemmDims{100, 1, 3}));

TEST(GemmTest, ZeroSizedDimensionsAreNoops) {
  float c[4] = {1, 2, 3, 4};
  gemm(0, 2, 3, 1.0f, nullptr, nullptr, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 1);  // untouched: m == 0
  gemm(2, 2, 0, 1.0f, nullptr, nullptr, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 0);  // k == 0 with beta=0 zeroes C
}

TEST(GemmBtTest, MatchesPlainGemm) {
  Rng rng(5);
  const std::int64_t m = 13, n = 9, k = 21;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> b_t(static_cast<std::size_t>(n * k));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j) b_t[j * k + p] = b[p * n + j];
  std::vector<float> c1(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c2 = c1;
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  gemm_bt(m, n, k, 1.0f, a.data(), b_t.data(), 0.0f, c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i) ASSERT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(GemmAtTest, MatchesPlainGemm) {
  Rng rng(6);
  const std::int64_t m = 11, n = 7, k = 19;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> a_t(static_cast<std::size_t>(k * m));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) a_t[p * m + i] = a[i * k + p];
  std::vector<float> c1(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c2 = c1;
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  gemm_at(m, n, k, 1.0f, a_t.data(), b.data(), 0.0f, c2.data());
  for (std::size_t i = 0; i < c1.size(); ++i) ASSERT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(MatmulTest, TensorInterface) {
  const Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_values({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.dim(0), 2);
  EXPECT_EQ(c.dim(1), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(MatmulTest, RejectsIncompatibleShapes) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
  EXPECT_THROW(matmul(a.reshaped({6}), a), InvalidArgument);
}

}  // namespace
}  // namespace dcnas
