#include "dcnas/tensor/gemm_s8.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "dcnas/common/rng.hpp"

namespace dcnas {
namespace {

std::vector<std::int8_t> random_q(std::int64_t n, Rng& rng) {
  std::vector<std::int8_t> q(static_cast<std::size_t>(n));
  for (auto& v : q) {
    v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  return q;
}

/// Naive int64 reference — wide enough that it cannot itself overflow, so
/// it also checks the kernel's int32 accumulation never wraps at these
/// sizes.
std::vector<std::int32_t> reference_i32(std::int64_t m, std::int64_t n,
                                        std::int64_t k,
                                        const std::int8_t* a,
                                        const std::int8_t* b) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int64_t>(a[i * k + p]) * b[p * n + j];
      }
      c[static_cast<std::size_t>(i * n + j)] = static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

TEST(GemmS8Test, MatchesNaiveReferenceAcrossShapeGrid) {
  Rng rng(101);
  // Shapes straddle every blocking boundary: micro-tile edges (8x16),
  // K-pair odd/even, the K-block size (256), and the M-block size (128).
  const std::int64_t ms[] = {1, 3, 8, 9, 33, 130};
  const std::int64_t ns[] = {1, 15, 16, 17, 64};
  const std::int64_t ks[] = {1, 2, 7, 64, 255, 256, 300};
  for (std::int64_t m : ms) {
    for (std::int64_t n : ns) {
      for (std::int64_t k : ks) {
        const auto a = random_q(m * k, rng);
        const auto b = random_q(k * n, rng);
        std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
        gemm_s8_i32(m, n, k, a.data(), b.data(), got.data());
        const auto want = reference_i32(m, n, k, a.data(), b.data());
        ASSERT_EQ(got, want) << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmS8Test, FusedEpilogueMatchesManualRequantizationBitwise) {
  Rng rng(7);
  for (const bool relu : {false, true}) {
    // k = 40 exercises the fused single-K-block path; k = 300 the
    // accumulate-then-requantize path. Both must produce identical fp32.
    for (const std::int64_t k : {40, 300}) {
      const std::int64_t m = 33, n = 21;
      const auto a = random_q(m * k, rng);
      const auto b = random_q(k * n, rng);
      std::vector<float> scale(static_cast<std::size_t>(m));
      std::vector<float> bias(static_cast<std::size_t>(m));
      for (std::int64_t i = 0; i < m; ++i) {
        scale[static_cast<std::size_t>(i)] =
            0.001f + 0.01f * static_cast<float>(rng.uniform());
        bias[static_cast<std::size_t>(i)] =
            static_cast<float>(rng.uniform()) - 0.5f;
      }
      QuantEpilogue epi;
      epi.scale = scale.data();
      epi.bias = bias.data();
      epi.relu = relu;
      std::vector<float> got(static_cast<std::size_t>(m * n), -42.0f);
      gemm_s8(m, n, k, a.data(), b.data(), epi, got.data());
      const auto acc = reference_i32(m, n, k, a.data(), b.data());
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          float want = static_cast<float>(acc[static_cast<std::size_t>(
                           i * n + j)]) *
                           scale[static_cast<std::size_t>(i)] +
                       bias[static_cast<std::size_t>(i)];
          if (relu && want < 0.0f) want = 0.0f;
          ASSERT_EQ(got[static_cast<std::size_t>(i * n + j)], want)
              << "i=" << i << " j=" << j << " k=" << k << " relu=" << relu;
        }
      }
    }
  }
}

TEST(GemmS8Test, QuantizedProductTracksFp32ProductWithinScaleBound) {
  // The differential contract QUANTIZATION.md states: |fp32 - dequantized
  // int8| per output element is bounded by the accumulated rounding error,
  // k * (|a|max * sb/2 + |b|max * sa/2) to first order. Verify with a
  // generous constant factor.
  Rng rng(23);
  const std::int64_t m = 24, n = 24, k = 96;
  std::vector<float> af(static_cast<std::size_t>(m * k));
  std::vector<float> bf(static_cast<std::size_t>(k * n));
  for (auto& v : af) v = 2.0f * static_cast<float>(rng.uniform()) - 1.0f;
  for (auto& v : bf) v = 2.0f * static_cast<float>(rng.uniform()) - 1.0f;
  const float sa = 1.0f / 127.0f, sb = 1.0f / 127.0f;
  std::vector<std::int8_t> aq(af.size()), bq(bf.size());
  for (std::size_t i = 0; i < af.size(); ++i) {
    aq[i] = static_cast<std::int8_t>(std::lrintf(af[i] / sa));
  }
  for (std::size_t i = 0; i < bf.size(); ++i) {
    bq[i] = static_cast<std::int8_t>(std::lrintf(bf[i] / sb));
  }
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
  gemm_s8_i32(m, n, k, aq.data(), bq.data(), acc.data());
  const double bound = static_cast<double>(k) * (sa / 2.0 + sb / 2.0) * 1.5;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double want = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        want += static_cast<double>(af[static_cast<std::size_t>(i * k + p)]) *
                bf[static_cast<std::size_t>(p * n + j)];
      }
      const double got =
          static_cast<double>(acc[static_cast<std::size_t>(i * n + j)]) * sa *
          sb;
      ASSERT_LT(std::abs(want - got), bound) << "i=" << i << " j=" << j;
    }
  }
}

TEST(GemmS8Test, DirectGemmMatchesIm2colForPointwiseConv) {
  // For kernel=1, stride=1, padding=0 the im2col gather is the identity:
  // the executor's fast path hands the quantized input planes (C x H·W)
  // straight to gemm_s8. Both routes accumulate the same int32 products,
  // so the fp32 outputs must match bitwise — across the lattice's channel
  // counts (5/7 inputs, 16..96 widths) and spatial sizes.
  Rng rng(311);
  const std::int64_t chans[] = {5, 7, 16, 24, 32, 48, 64, 96};
  const std::int64_t sides[] = {1, 7, 23};
  for (std::int64_t c : chans) {
    for (std::int64_t side : sides) {
      const std::int64_t oc = 17;  // off the micro-tile edge on purpose
      const std::int64_t hw = side * side;
      const auto w = random_q(oc * c, rng);
      const auto im = random_q(c * hw, rng);
      std::vector<float> scale(static_cast<std::size_t>(oc));
      std::vector<float> bias(static_cast<std::size_t>(oc));
      for (auto& v : scale) {
        v = 0.001f + 0.01f * static_cast<float>(rng.uniform());
      }
      for (auto& v : bias) v = static_cast<float>(rng.uniform()) - 0.5f;
      QuantEpilogue epi;
      epi.scale = scale.data();
      epi.bias = bias.data();
      epi.relu = true;
      Im2colSpec spec;
      spec.channels = c;
      spec.height = side;
      spec.width = side;
      spec.kernel = 1;
      spec.stride = 1;
      spec.padding = 0;
      std::vector<float> via_im2col(static_cast<std::size_t>(oc * hw), -1.0f);
      gemm_s8_im2col(oc, w.data(), im.data(), spec, epi, via_im2col.data());
      std::vector<float> direct(static_cast<std::size_t>(oc * hw), -2.0f);
      gemm_s8(oc, hw, c, w.data(), im.data(), epi, direct.data());
      ASSERT_EQ(direct, via_im2col) << "c=" << c << " side=" << side;
    }
  }
}

TEST(GemmS8Test, RejectsKBeyondOverflowBound) {
  std::vector<std::int8_t> a(static_cast<std::size_t>(kGemmS8MaxK + 1));
  std::vector<std::int8_t> b(static_cast<std::size_t>(kGemmS8MaxK + 1));
  std::int32_t c = 0;
  EXPECT_THROW(gemm_s8_i32(1, 1, kGemmS8MaxK + 1, a.data(), b.data(), &c),
               InvalidArgument);
}

TEST(GemmS8Test, ReportsSelectedKernel) {
  const std::string name = gemm_s8_kernel_name();
  EXPECT_TRUE(name == "avx512vnni" || name == "avx2" || name == "sse2" ||
              name == "scalar")
      << name;
}

}  // namespace
}  // namespace dcnas
