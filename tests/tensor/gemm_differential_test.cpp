/// Differential suite for the packed GEMM substrate: every variant is
/// cross-checked against a naive triple-loop reference over randomized
/// shapes (including 0/1 edge dimensions that exercise panel/sliver
/// padding), alpha/beta combinations, and NaN/Inf propagation. These tests
/// pinned the seed kernel's behavior before the packed rewrite and now
/// guard it; they run under plain, ASan+UBSan, and TSan builds.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dcnas/common/rng.hpp"
#include "dcnas/tensor/gemm.hpp"
#include "dcnas/tensor/im2col.hpp"

namespace dcnas {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

void ref_gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

std::vector<float> random_vec(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(std::max<std::int64_t>(n, 1)));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

struct DiffCase {
  std::int64_t m, n, k;
  float alpha, beta;
};

class GemmDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(GemmDifferentialTest, AllVariantsMatchNaiveReference) {
  const auto [m, n, k, alpha, beta] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7919 + n * 104729 + k * 31 + 1));
  const std::vector<float> a = random_vec(m * k, rng);
  const std::vector<float> b = random_vec(k * n, rng);

  // Transposed copies for the _bt/_at variants.
  std::vector<float> b_t(
      static_cast<std::size_t>(std::max<std::int64_t>(n * k, 1)));
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) b_t[j * k + p] = b[p * n + j];
  }
  std::vector<float> a_t(
      static_cast<std::size_t>(std::max<std::int64_t>(k * m, 1)));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) a_t[p * m + i] = a[i * k + p];
  }

  const std::vector<float> c0 =
      random_vec(std::max<std::int64_t>(m * n, 1), rng);
  std::vector<float> c_ref = c0;
  ref_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_ref.data());

  const float tol = 1e-3f * std::max<float>(1.0f, static_cast<float>(k) / 64);
  auto expect_matches = [&](const std::vector<float>& c, const char* which) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], tol) << which << " at " << i;
    }
  };

  std::vector<float> c = c0;
  gemm(m, n, k, alpha, a.data(), b.data(), beta, c.data());
  expect_matches(c, "gemm");

  c = c0;
  gemm_bt(m, n, k, alpha, a.data(), b_t.data(), beta, c.data());
  expect_matches(c, "gemm_bt");

  c = c0;
  gemm_at(m, n, k, alpha, a_t.data(), b.data(), beta, c.data());
  expect_matches(c, "gemm_at");
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAlphaBeta, GemmDifferentialTest,
    ::testing::Values(
        // 0/1 edge dimensions: empty products, single rows/cols/depth.
        DiffCase{0, 5, 3, 1.0f, 0.0f}, DiffCase{5, 0, 3, 1.0f, 0.5f},
        DiffCase{4, 3, 0, 1.0f, 0.0f}, DiffCase{4, 3, 0, 2.0f, 1.0f},
        DiffCase{1, 1, 1, -1.5f, 0.25f}, DiffCase{1, 37, 5, 1.0f, 1.0f},
        DiffCase{37, 1, 5, 0.5f, 0.0f}, DiffCase{3, 4, 1, 1.0f, 2.0f},
        // Tile-edge shapes around MR=4 / NR=16 / KC=256 boundaries.
        DiffCase{4, 16, 8, 1.0f, 0.0f}, DiffCase{5, 17, 9, 1.0f, 0.0f},
        DiffCase{3, 15, 7, -2.0f, 1.0f}, DiffCase{8, 32, 257, 1.0f, 0.5f},
        DiffCase{131, 33, 129, 1.3f, 0.7f}, DiffCase{129, 18, 300, 1.0f, 1.0f},
        // Alpha/beta corner combinations, including alpha == 0 (BLAS
        // semantics: the product is skipped entirely and C = beta*C).
        DiffCase{12, 20, 24, 0.0f, 0.5f}, DiffCase{12, 20, 24, 0.0f, 0.0f},
        DiffCase{12, 20, 24, 1.0f, -1.0f}, DiffCase{40, 48, 56, -0.7f, 0.3f}));

// ---- NaN / Inf propagation -------------------------------------------------
// The seed kernel's `if (aip == 0.0f) continue;` fast path dropped the
// multiplication entirely, so a zero in A silently hid a NaN in B: 0 * NaN
// became 0 instead of NaN and corrupted activations sailed through. The
// packed kernels never short-circuit on element values; these tests pin
// that for all three variants.

TEST(GemmNaNPropagationTest, ZeroInADoesNotHideNaNInB) {
  // A row is all zeros; B carries a NaN in every column. C must be NaN
  // everywhere: sum_p 0 * NaN = NaN.
  const std::int64_t m = 3, n = 5, k = 4;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  std::vector<float> b(static_cast<std::size_t>(k * n), 1.0f);
  for (std::int64_t j = 0; j < n; ++j) b[1 * n + j] = kNaN;
  std::vector<float> c(static_cast<std::size_t>(m * n), 7.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(std::isnan(c[i])) << "0 * NaN was swallowed at " << i;
  }
}

TEST(GemmNaNPropagationTest, ZeroTimesInfIsNaN) {
  const std::int64_t m = 2, n = 3, k = 2;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  std::vector<float> b(static_cast<std::size_t>(k * n), kInf);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(std::isnan(c[i])) << "0 * Inf must be NaN at " << i;
  }
}

TEST(GemmNaNPropagationTest, GemmBtPropagates) {
  const std::int64_t m = 4, n = 6, k = 5;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  std::vector<float> b_t(static_cast<std::size_t>(n * k), 1.0f);
  b_t[2 * k + 3] = kNaN;  // B(3, 2) is NaN -> column 2 of C is NaN
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  gemm_bt(m, n, k, 1.0f, a.data(), b_t.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c[i * n + 2])) << "row " << i;
    EXPECT_FLOAT_EQ(c[i * n + 0], 0.0f) << "row " << i;
  }
}

TEST(GemmNaNPropagationTest, GemmAtPropagates) {
  const std::int64_t m = 5, n = 4, k = 3;
  std::vector<float> a_t(static_cast<std::size_t>(k * m), 0.0f);
  std::vector<float> b(static_cast<std::size_t>(k * n), 1.0f);
  b[1 * n + 1] = kNaN;  // B(1, 1) is NaN -> column 1 of C is NaN
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  gemm_at(m, n, k, 1.0f, a_t.data(), b.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(std::isnan(c[i * n + 1])) << "row " << i;
    EXPECT_FLOAT_EQ(c[i * n + 0], 0.0f) << "row " << i;
  }
}

TEST(GemmNaNPropagationTest, NaNInAPropagatesThroughZeroB) {
  const std::int64_t m = 3, n = 4, k = 3;
  std::vector<float> a(static_cast<std::size_t>(m * k), 1.0f);
  a[1 * k + 2] = kNaN;  // A(1, 2)
  std::vector<float> b(static_cast<std::size_t>(k * n), 0.0f);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(c[1 * n + j])) << "col " << j;
    EXPECT_FLOAT_EQ(c[0 * n + j], 0.0f) << "col " << j;
  }
}

// ---- fused im2col GEMM -----------------------------------------------------

struct FusedCase {
  std::int64_t channels, hw, kernel, stride, padding, out_ch;
};

class GemmIm2colTest : public ::testing::TestWithParam<FusedCase> {};

TEST_P(GemmIm2colTest, MatchesMaterializedIm2colPlusGemm) {
  const auto [channels, hw, kernel, stride, padding, out_ch] = GetParam();
  Rng rng(static_cast<std::uint64_t>(channels * 131 + hw * 17 + kernel));
  const std::vector<float> im = random_vec(channels * hw * hw, rng);
  const std::int64_t col_rows = channels * kernel * kernel;
  const Im2colSpec spec{channels, hw, hw, kernel, stride, padding};
  const std::int64_t out_hw = spec.out_h() * spec.out_w();
  const std::vector<float> w = random_vec(out_ch * col_rows, rng);

  std::vector<float> col(static_cast<std::size_t>(col_rows * out_hw));
  im2col(im.data(), channels, hw, hw, kernel, stride, padding, col.data());
  std::vector<float> c_ref(static_cast<std::size_t>(out_ch * out_hw), 0.5f);
  std::vector<float> c = c_ref;
  ref_gemm(out_ch, out_hw, col_rows, 1.0f, w.data(), col.data(), 0.7f,
           c_ref.data());
  gemm_im2col(out_ch, 1.0f, w.data(), im.data(), spec, 0.7f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GemmIm2colTest,
    ::testing::Values(FusedCase{1, 5, 1, 1, 0, 3},   // pointwise
                      FusedCase{2, 9, 3, 1, 1, 4},   // stride-1 same-pad
                      FusedCase{3, 8, 3, 2, 1, 5},   // strided
                      FusedCase{2, 7, 3, 1, 3, 4},   // padding == kernel
                      FusedCase{1, 9, 7, 2, 3, 2},   // large kernel
                      FusedCase{4, 16, 5, 3, 2, 6},  // stride 3
                      FusedCase{8, 14, 3, 1, 1, 32}  // NAS-typical block
                      ));

TEST(GemmIm2colTest, PropagatesNaNFromImage) {
  const std::int64_t channels = 1, hw = 4, kernel = 3;
  std::vector<float> im(static_cast<std::size_t>(channels * hw * hw), 1.0f);
  im[5] = kNaN;  // pixel (1, 1)
  const Im2colSpec spec{channels, hw, hw, kernel, 1, 1};
  std::vector<float> w(static_cast<std::size_t>(kernel * kernel), 0.0f);
  std::vector<float> c(
      static_cast<std::size_t>(spec.out_h() * spec.out_w()), 0.0f);
  gemm_im2col(1, 1.0f, w.data(), im.data(), spec, 0.0f, c.data());
  // Every output pixel whose receptive field covers (1,1) must be NaN even
  // though all weights are zero.
  EXPECT_TRUE(std::isnan(c[0 * 4 + 0]));
  EXPECT_TRUE(std::isnan(c[1 * 4 + 1]));
  EXPECT_TRUE(std::isnan(c[2 * 4 + 2]));
  EXPECT_FALSE(std::isnan(c[3 * 4 + 3]));
}

}  // namespace
}  // namespace dcnas
