#include "dcnas/tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace dcnas {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullFillsValue) {
  const Tensor t = Tensor::full({2, 2}, 1.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 1.5f);
}

TEST(TensorTest, ShapeHelpers) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.ndim(), 4u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_EQ(t.numel(), 120);
  EXPECT_EQ(shape_to_string(t.shape()), "[2, 3, 4, 5]");
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(Tensor().empty());
}

TEST(TensorTest, NchwIndexingIsRowMajor) {
  Tensor t({1, 2, 2, 3});
  t.at(0, 1, 1, 2) = 7.0f;
  // offset = ((0*2+1)*2+1)*3+2 = 11
  EXPECT_EQ(t[11], 7.0f);
  EXPECT_EQ(t.at(0, 1, 1, 2), 7.0f);
}

TEST(TensorTest, TwoDimIndexing) {
  Tensor t({3, 4});
  t.at(2, 1) = 9.0f;
  EXPECT_EQ(t[9], 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

TEST(TensorTest, FromValuesValidatesCount) {
  EXPECT_THROW(Tensor::from_values({2, 2}, {1.0f}), InvalidArgument);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  const Tensor b = Tensor::from_values({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[2], 33.0f);
  a.add_scaled_(b, -1.0f);
  EXPECT_EQ(a[0], 1.0f);
  a.mul_(2.0f);
  EXPECT_EQ(a[1], 4.0f);
  const Tensor c = a.added(b);
  EXPECT_EQ(c[0], 12.0f);
  EXPECT_EQ(a[0], 2.0f);  // a unchanged by added()
}

TEST(TensorTest, AddShapeMismatchThrows) {
  Tensor a({2, 2});
  const Tensor b({4});
  EXPECT_THROW(a.add_(b), InvalidArgument);
}

TEST(TensorTest, Reductions) {
  const Tensor t = Tensor::from_values({4}, {1, -2, 3, 6});
  EXPECT_DOUBLE_EQ(t.sum(), 8.0);
  EXPECT_DOUBLE_EQ(t.mean(), 2.0);
  EXPECT_EQ(t.max_value(), 6.0f);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng r1(5), r2(5);
  const Tensor a = Tensor::randn({100}, r1);
  const Tensor b = Tensor::randn({100}, r2);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(TensorTest, RandnMomentsRoughlyCorrect) {
  Rng rng(17);
  const Tensor t = Tensor::randn({20000}, rng, 2.0f, 0.5f);
  EXPECT_NEAR(t.mean(), 2.0, 0.02);
}

TEST(TensorTest, RandUniformRespectsBounds) {
  Rng rng(3);
  const Tensor t = Tensor::rand_uniform({1000}, rng, -1.0f, 1.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    ASSERT_GE(t[i], -1.0f);
    ASSERT_LT(t[i], 1.0f);
  }
}

TEST(TensorTest, NegativeShapeRejected) {
  EXPECT_THROW(Tensor({2, -1}), InvalidArgument);
}

}  // namespace
}  // namespace dcnas
