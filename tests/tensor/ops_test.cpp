#include "dcnas/tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dcnas {
namespace {

TEST(MaxPoolTest, HandComputed2x2Stride2) {
  Tensor in = Tensor::from_values(
      {1, 1, 4, 4},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  std::vector<std::int64_t> argmax;
  const Tensor out = maxpool2d_forward(in, 2, 2, 0, &argmax);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 6);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 8);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 14);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 16);
  EXPECT_EQ(argmax[0], 5);
  EXPECT_EQ(argmax[3], 15);
}

TEST(MaxPoolTest, BackwardRoutesGradToArgmax) {
  Tensor in = Tensor::from_values({1, 1, 2, 2}, {1, 9, 3, 4});
  std::vector<std::int64_t> argmax;
  const Tensor out = maxpool2d_forward(in, 2, 2, 0, &argmax);
  ASSERT_EQ(out.numel(), 1);
  Tensor grad_out = Tensor::full({1, 1, 1, 1}, 2.5f);
  const Tensor grad_in = maxpool2d_backward(grad_out, in.shape(), argmax);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 2.5f);
  EXPECT_FLOAT_EQ(grad_in[2], 0.0f);
}

TEST(MaxPoolTest, PaddingIgnoredInMax) {
  // With padding=1 and all-negative inputs, padded zeros must NOT win:
  // padding contributes no candidate values (PyTorch uses -inf padding).
  Tensor in = Tensor::full({1, 1, 2, 2}, -5.0f);
  std::vector<std::int64_t> argmax;
  const Tensor out = maxpool2d_forward(in, 3, 2, 1, &argmax);
  for (std::int64_t i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], -5.0f);
}

TEST(MaxPoolTest, MultiChannelIndependent) {
  Tensor in({2, 3, 4, 4});
  for (std::int64_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(i % 17);
  std::vector<std::int64_t> argmax;
  const Tensor out = maxpool2d_forward(in, 2, 2, 0, &argmax);
  EXPECT_EQ(out.shape(), (Shape{2, 3, 2, 2}));
  // Each argmax index must fall inside its own (n, c) plane.
  const std::int64_t plane = 16;
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    const std::int64_t out_plane = static_cast<std::int64_t>(i) / 4;
    EXPECT_GE(argmax[i], out_plane * plane);
    EXPECT_LT(argmax[i], (out_plane + 1) * plane);
  }
}

TEST(GlobalAvgPoolTest, ComputesPlaneMeans) {
  Tensor in = Tensor::from_values({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor out = global_avgpool_forward(in);
  ASSERT_EQ(out.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 25.0f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
  Tensor grad_out = Tensor::from_values({1, 1}, {8.0f});
  const Tensor grad_in = global_avgpool_backward(grad_out, {1, 1, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad_in[i], 2.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  const Tensor logits =
      Tensor::from_values({2, 3}, {1, 2, 3, -1, 0, 100});
  const Tensor p = softmax_rows(logits);
  for (std::int64_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(p.at(1, 2), 1.0f, 1e-5f);
}

TEST(SoftmaxTest, InvariantToRowShift) {
  const Tensor a = Tensor::from_values({1, 3}, {1, 2, 3});
  const Tensor b = Tensor::from_values({1, 3}, {101, 102, 103});
  const Tensor pa = softmax_rows(a);
  const Tensor pb = softmax_rows(b);
  for (std::int64_t c = 0; c < 3; ++c) EXPECT_NEAR(pa[c], pb[c], 1e-6f);
}

TEST(ArgmaxRowsTest, PicksFirstMaximum) {
  const Tensor t = Tensor::from_values({3, 3}, {0, 5, 1, 9, 2, 9, 3, 3, 3});
  const auto idx = argmax_rows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);  // ties -> first
  EXPECT_EQ(idx[2], 0);
}

TEST(ReluTest, ClampsAndMasks) {
  Tensor t = Tensor::from_values({5}, {-2, -0.5f, 0, 0.5f, 2});
  Tensor mask;
  relu_inplace(t, &mask);
  EXPECT_FLOAT_EQ(t[0], 0);
  EXPECT_FLOAT_EQ(t[2], 0);
  EXPECT_FLOAT_EQ(t[4], 2);
  EXPECT_FLOAT_EQ(mask[0], 0);
  EXPECT_FLOAT_EQ(mask[3], 1);
  EXPECT_FLOAT_EQ(mask[2], 0);  // relu'(0) = 0 convention
}

TEST(ReluTest, NullMaskAllowed) {
  Tensor t = Tensor::from_values({2}, {-1, 1});
  relu_inplace(t, nullptr);
  EXPECT_FLOAT_EQ(t[0], 0);
  EXPECT_FLOAT_EQ(t[1], 1);
}

}  // namespace
}  // namespace dcnas
