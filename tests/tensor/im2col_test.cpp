#include "dcnas/tensor/im2col.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"

namespace dcnas {
namespace {

TEST(ConvOutSizeTest, StandardGeometries) {
  EXPECT_EQ(conv_out_size(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_size(224, 3, 2, 1), 112);
  EXPECT_EQ(conv_out_size(112, 3, 2, 1), 56);
  EXPECT_EQ(conv_out_size(56, 3, 1, 1), 56);
  EXPECT_EQ(conv_out_size(5, 3, 1, 0), 3);
}

TEST(ConvOutSizeTest, RejectsDegenerateGeometry) {
  EXPECT_THROW(conv_out_size(2, 5, 1, 0), InvalidArgument);
  EXPECT_THROW(conv_out_size(0, 3, 1, 1), InvalidArgument);
  EXPECT_THROW(conv_out_size(8, 3, 0, 1), InvalidArgument);
  EXPECT_THROW(conv_out_size(8, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(conv_out_size(8, 3, 1, -1), InvalidArgument);
}

TEST(Im2ColTest, IdentityKernelIsPassthrough) {
  // 1x1 kernel, stride 1, no padding: col equals the image.
  const std::int64_t c = 2, h = 3, w = 3;
  std::vector<float> im(static_cast<std::size_t>(c * h * w));
  for (std::size_t i = 0; i < im.size(); ++i) im[i] = static_cast<float>(i);
  std::vector<float> col(im.size(), -1.0f);
  im2col(im.data(), c, h, w, 1, 1, 0, col.data());
  EXPECT_EQ(col, im);
}

TEST(Im2ColTest, HandComputed2x2OnSingleChannel) {
  // image 3x3: [0..8], kernel 2, stride 1, pad 0 -> out 2x2, col is 4x4.
  std::vector<float> im = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> col(16, -1.0f);
  im2col(im.data(), 1, 3, 3, 2, 1, 0, col.data());
  // Row 0 = top-left of each window: 0 1 3 4
  EXPECT_FLOAT_EQ(col[0], 0);
  EXPECT_FLOAT_EQ(col[1], 1);
  EXPECT_FLOAT_EQ(col[2], 3);
  EXPECT_FLOAT_EQ(col[3], 4);
  // Row 3 = bottom-right of each window: 4 5 7 8
  EXPECT_FLOAT_EQ(col[12], 4);
  EXPECT_FLOAT_EQ(col[15], 8);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  std::vector<float> im = {1, 1, 1, 1};  // 1x2x2 of ones
  const std::int64_t out = conv_out_size(2, 3, 1, 1);
  ASSERT_EQ(out, 2);
  std::vector<float> col(static_cast<std::size_t>(9 * out * out), -1.0f);
  im2col(im.data(), 1, 2, 2, 3, 1, 1, col.data());
  // First patch is centered at (0,0) so its top row is all padding.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Center of first patch is the pixel (0,0) = 1.
  EXPECT_FLOAT_EQ(col[4 * 4 + 0], 1.0f);
  // Every value is 0 or 1.
  for (float v : col) EXPECT_TRUE(v == 0.0f || v == 1.0f);
}

TEST(Col2ImTest, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property the
  // conv backward pass relies on.
  Rng rng(31);
  const std::int64_t c = 3, h = 7, w = 6, k = 3, s = 2, p = 1;
  const std::int64_t oh = conv_out_size(h, k, s, p);
  const std::int64_t ow = conv_out_size(w, k, s, p);
  const std::size_t im_n = static_cast<std::size_t>(c * h * w);
  const std::size_t col_n = static_cast<std::size_t>(c * k * k * oh * ow);
  std::vector<float> x(im_n), y(col_n);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> col_x(col_n, 0.0f);
  im2col(x.data(), c, h, w, k, s, p, col_x.data());
  std::vector<float> im_y(im_n, 0.0f);
  col2im(y.data(), c, h, w, k, s, p, im_y.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_n; ++i) lhs += static_cast<double>(col_x[i]) * y[i];
  for (std::size_t i = 0; i < im_n; ++i) rhs += static_cast<double>(x[i]) * im_y[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

struct ConvGeom {
  std::int64_t c, h, w, k, s, p;
};

class Im2ColRoundTrip : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Im2ColRoundTrip, Col2ImCountsWindowCoverage) {
  // col2im(im2col(ones)) equals, per pixel, the number of windows covering
  // that pixel — a structural property easy to verify independently.
  const auto g = GetParam();
  const std::int64_t oh = conv_out_size(g.h, g.k, g.s, g.p);
  const std::int64_t ow = conv_out_size(g.w, g.k, g.s, g.p);
  std::vector<float> im(static_cast<std::size_t>(g.c * g.h * g.w), 1.0f);
  std::vector<float> col(
      static_cast<std::size_t>(g.c * g.k * g.k * oh * ow), 0.0f);
  im2col(im.data(), g.c, g.h, g.w, g.k, g.s, g.p, col.data());
  std::vector<float> back(im.size(), 0.0f);
  col2im(col.data(), g.c, g.h, g.w, g.k, g.s, g.p, back.data());
  for (std::int64_t y = 0; y < g.h; ++y) {
    for (std::int64_t x = 0; x < g.w; ++x) {
      int cover = 0;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t ty = y - (oy * g.s - g.p);
          const std::int64_t tx = x - (ox * g.s - g.p);
          if (ty >= 0 && ty < g.k && tx >= 0 && tx < g.k) ++cover;
        }
      }
      for (std::int64_t ch = 0; ch < g.c; ++ch) {
        ASSERT_FLOAT_EQ(back[static_cast<std::size_t>((ch * g.h + y) * g.w + x)],
                        static_cast<float>(cover));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColRoundTrip,
    ::testing::Values(ConvGeom{1, 4, 4, 2, 1, 0}, ConvGeom{2, 5, 5, 3, 1, 1},
                      ConvGeom{3, 8, 6, 3, 2, 1}, ConvGeom{1, 9, 9, 7, 2, 3},
                      ConvGeom{2, 7, 7, 2, 2, 0}, ConvGeom{1, 6, 6, 3, 3, 1}));

class Im2ColStride1FastPath : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Im2ColStride1FastPath, MatchesElementwiseGather) {
  // The stride-1 path bulk-copies contiguous rows with zero-filled padded
  // prefix/suffix; verify against the per-element definition, including
  // padding > kernel (fully padded output rows/columns).
  const auto g = GetParam();
  ASSERT_EQ(g.s, 1);
  const std::int64_t oh = conv_out_size(g.h, g.k, g.s, g.p);
  const std::int64_t ow = conv_out_size(g.w, g.k, g.s, g.p);
  std::vector<float> im(static_cast<std::size_t>(g.c * g.h * g.w));
  for (std::size_t i = 0; i < im.size(); ++i) {
    im[i] = static_cast<float>(i) * 0.25f - 3.0f;
  }
  std::vector<float> col(
      static_cast<std::size_t>(g.c * g.k * g.k * oh * ow), -7.0f);
  im2col(im.data(), g.c, g.h, g.w, g.k, g.s, g.p, col.data());
  for (std::int64_t ch = 0; ch < g.c; ++ch) {
    for (std::int64_t kh = 0; kh < g.k; ++kh) {
      for (std::int64_t kw = 0; kw < g.k; ++kw) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t iy = oy - g.p + kh;
            const std::int64_t ix = ox - g.p + kw;
            const float want =
                (iy >= 0 && iy < g.h && ix >= 0 && ix < g.w)
                    ? im[static_cast<std::size_t>((ch * g.h + iy) * g.w + ix)]
                    : 0.0f;
            const std::size_t at = static_cast<std::size_t>(
                (((ch * g.k + kh) * g.k + kw) * oh + oy) * ow + ox);
            ASSERT_FLOAT_EQ(col[at], want)
                << "c=" << ch << " kh=" << kh << " kw=" << kw << " oy=" << oy
                << " ox=" << ox;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stride1Geometries, Im2ColStride1FastPath,
    ::testing::Values(ConvGeom{1, 4, 4, 3, 1, 0}, ConvGeom{2, 5, 7, 3, 1, 1},
                      ConvGeom{1, 3, 3, 3, 1, 3},   // padding == kernel
                      ConvGeom{2, 4, 4, 3, 1, 4},   // padding > kernel
                      ConvGeom{1, 8, 5, 5, 1, 2},
                      ConvGeom{3, 6, 6, 1, 1, 0}));

}  // namespace
}  // namespace dcnas
