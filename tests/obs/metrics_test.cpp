#include "dcnas/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/stats.hpp"

namespace dcnas::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(HistogramTest, BucketBoundarySemantics) {
  // Boundaries [1, 2, 4]: bucket 0 = (-inf, 1), 1 = [1, 2), 2 = [2, 4),
  // 3 = [4, +inf).
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 1 (boundary value goes right)
  h.observe(1.99);  // bucket 1
  h.observe(3.9);   // bucket 2
  h.observe(4.0);   // bucket 3
  h.observe(100.0); // bucket 3
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{1, 2, 1, 2}));
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.99 + 3.9 + 4.0 + 100.0, 1e-12);
}

TEST(HistogramTest, RejectsInvalidBoundaries) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
}

TEST(HistogramTest, ExponentialBoundaries) {
  const auto b = Histogram::exponential_boundaries(1e-3, 10.0, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-3);
  EXPECT_NEAR(b.back(), 10.0, 1e-9);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]);
    // Constant ratio between consecutive boundaries.
    EXPECT_NEAR(b[i] / b[i - 1], std::pow(10.0 / 1e-3, 0.25), 1e-9);
  }
}

TEST(HistogramTest, ResetZeroesInPlace) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{0, 0}));
  h.observe(3.0);
  EXPECT_EQ(h.count(), 1);
}

TEST(SummaryTest, QuantilesMatchCommonStats) {
  Summary s;
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) {
    values.push_back(static_cast<double>(i) * 0.5);
    s.observe(values.back());
  }
  EXPECT_EQ(s.count(), 100);
  EXPECT_DOUBLE_EQ(s.quantile(0.50), quantile(values, 0.50));
  EXPECT_DOUBLE_EQ(s.quantile(0.95), quantile(values, 0.95));
  EXPECT_DOUBLE_EQ(s.quantile(0.99), quantile(values, 0.99));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry r;
  Counter& a = r.counter("x.count");
  Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry r;
  r.counter("metric.a");
  EXPECT_THROW(r.gauge("metric.a"), InvalidArgument);
  EXPECT_THROW(r.histogram("metric.a", {1.0}), InvalidArgument);
  EXPECT_THROW(r.summary("metric.a"), InvalidArgument);
  EXPECT_EQ(r.find_gauge("metric.a"), nullptr);
  EXPECT_NE(r.find_counter("metric.a"), nullptr);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry r;
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_TRUE(r.names_with_prefix("").empty());
}

TEST(MetricsRegistryTest, NamesWithPrefixSorted) {
  MetricsRegistry r;
  r.counter("b.two");
  r.counter("a.one");
  r.gauge("b.one");
  EXPECT_EQ(r.names_with_prefix("b."),
            (std::vector<std::string>{"b.one", "b.two"}));
  EXPECT_EQ(r.names_with_prefix(""),
            (std::vector<std::string>{"a.one", "b.one", "b.two"}));
}

TEST(MetricsRegistryTest, ResetPrefixZeroesInPlaceKeepingReferences) {
  MetricsRegistry r;
  Counter& serve = r.counter("serve.count");
  Counter& nas = r.counter("nas.count");
  serve.add(5);
  nas.add(7);
  r.reset_prefix("serve.");
  EXPECT_EQ(serve.value(), 0);
  EXPECT_EQ(nas.value(), 7);
  // The reference obtained before reset still records into the registry.
  serve.add(2);
  EXPECT_EQ(r.find_counter("serve.count")->value(), 2);
  r.reset();
  EXPECT_EQ(nas.value(), 0);
}

TEST(MetricsRegistryTest, SnapshotCopiesAllKinds) {
  MetricsRegistry r;
  r.counter("c").add(4);
  r.gauge("g").set(2.5);
  r.histogram("h", {1.0}).observe(0.5);
  r.summary("s").observe(9.0);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c");
  EXPECT_EQ(snap.counters[0].second, 4);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1);
  EXPECT_EQ(snap.histograms[0].second.buckets,
            (std::vector<std::int64_t>{1, 0}));
  ASSERT_EQ(snap.summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.summaries[0].second.p50, 9.0);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreLossless) {
  MetricsRegistry r;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      // Mix registration (name lookup) and updates to exercise both locks.
      for (int i = 0; i < kAddsPerThread; ++i) {
        r.counter("shared.count").add(1);
        r.histogram("shared.hist", {1.0, 2.0}).observe(1.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(r.counter("shared.count").value(), kThreads * kAddsPerThread);
  EXPECT_EQ(r.histogram("shared.hist", {1.0, 2.0}).count(),
            kThreads * kAddsPerThread);
  EXPECT_EQ(r.histogram("shared.hist", {1.0, 2.0}).bucket_counts(),
            (std::vector<std::int64_t>{0, kThreads * kAddsPerThread, 0}));
}

}  // namespace
}  // namespace dcnas::obs
