#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/obs/trace_export.hpp"

namespace dcnas::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to round-trip the
// exporters' output. Numbers are doubles; no \uXXXX escapes (the exporters
// never emit them).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    DCNAS_CHECK(it != object.end(), "missing JSON key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    DCNAS_CHECK(pos_ == text_.size(), "trailing JSON content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::strchr(" \t\r\n", text_[pos_])) ++pos_;
  }
  char peek() {
    skip_ws();
    DCNAS_CHECK(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    DCNAS_CHECK(peek() == c, std::string("expected '") + c + "' in JSON");
    ++pos_;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = text_[pos_] == 't';
        pos_ += v.boolean ? 4 : 5;
        return v;
      }
      case 'n': {
        pos_ += 4;
        return {};
      }
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      DCNAS_CHECK(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        DCNAS_CHECK(pos_ < text_.size(), "dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: out += esc; break;  // \" \\ \/
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::strchr("+-0123456789.eE", text_[pos_])) {
      ++pos_;
    }
    DCNAS_CHECK(pos_ > start, "invalid JSON number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (consume(','));
    expect(']');
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    do {
      std::string key = string();
      expect(':');
      v.object.emplace(std::move(key), value());
    } while (consume(','));
    expect('}');
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics JSON round-trip
// ---------------------------------------------------------------------------

TEST(MetricsJsonTest, RoundTripsThroughParser) {
  MetricsRegistry r;
  r.counter("serve.request.admitted.count").add(42);
  r.gauge("nas.progress.fraction").set(0.375);
  Histogram& h = r.histogram("graph.executor.batch_rows", {1.0, 8.0});
  h.observe(0.5);
  h.observe(8.0);
  Summary& s = r.summary("serve.request.latency_ms");
  for (int i = 1; i <= 4; ++i) s.observe(static_cast<double>(i));

  const JsonValue root = JsonParser(r.to_json()).parse();
  EXPECT_EQ(root.at("counters")
                .at("serve.request.admitted.count")
                .number,
            42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("nas.progress.fraction").number,
                   0.375);

  const JsonValue& hist =
      root.at("histograms").at("graph.executor.batch_rows");
  EXPECT_EQ(hist.at("count").number, 2.0);
  ASSERT_EQ(hist.at("boundaries").array.size(), 2u);
  EXPECT_DOUBLE_EQ(hist.at("boundaries").array[1].number, 8.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 3u);
  EXPECT_EQ(hist.at("buckets").array[0].number, 1.0);
  EXPECT_EQ(hist.at("buckets").array[2].number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 0.5);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 8.0);

  const JsonValue& sum = root.at("summaries").at("serve.request.latency_ms");
  EXPECT_EQ(sum.at("count").number, 4.0);
  EXPECT_DOUBLE_EQ(sum.at("mean").number, 2.5);
  EXPECT_DOUBLE_EQ(sum.at("p50").number, 2.5);
  EXPECT_DOUBLE_EQ(sum.at("min").number, 1.0);
  EXPECT_DOUBLE_EQ(sum.at("max").number, 4.0);
}

TEST(MetricsJsonTest, EmptyRegistryIsValidJson) {
  MetricsRegistry r;
  const JsonValue root = JsonParser(r.to_json()).parse();
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
  EXPECT_TRUE(root.at("summaries").object.empty());
}

TEST(MetricsTextTest, ContainsEveryMetricName) {
  MetricsRegistry r;
  r.counter("a.count").add(1);
  r.gauge("b.value").set(2.0);
  r.histogram("c.hist", {1.0}).observe(0.5);
  r.summary("d.sum").observe(3.0);
  const std::string text = r.to_text();
  for (const char* name : {"a.count", "b.value", "c.hist", "d.sum"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------------
// Chrome-trace export
// ---------------------------------------------------------------------------

SpanEvent make_event(const char* name, const char* category,
                     const char* args, std::uint64_t start_ns,
                     std::uint64_t duration_ns, std::uint32_t tid) {
  SpanEvent e;
  std::strncpy(e.name, name, sizeof e.name - 1);
  std::strncpy(e.category, category, sizeof e.category - 1);
  std::strncpy(e.args, args, sizeof e.args - 1);
  e.start_ns = start_ns;
  e.duration_ns = duration_ns;
  e.thread_id = tid;
  return e;
}

TEST(ChromeTraceTest, EmitsCompleteEventsWithMetadata) {
  std::vector<SpanEvent> events;
  events.push_back(
      make_event("nas.trial.run", "nas", "config=k3_s1", 1500, 2'000'000, 1));
  events.push_back(make_event("nn.batch", "nn", "", 4000, 250, 2));

  const JsonValue root = JsonParser(chrome_trace_json(events)).parse();
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  const auto& items = root.at("traceEvents").array;
  // 1 process_name + 2 thread_name metadata events, then the 2 spans.
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].at("ph").str, "M");
  EXPECT_EQ(items[0].at("name").str, "process_name");
  EXPECT_EQ(items[0].at("args").at("name").str, "dcnas");
  EXPECT_EQ(items[1].at("name").str, "thread_name");
  EXPECT_EQ(items[2].at("name").str, "thread_name");

  const JsonValue& span = items[3];
  EXPECT_EQ(span.at("ph").str, "X");
  EXPECT_EQ(span.at("name").str, "nas.trial.run");
  EXPECT_EQ(span.at("cat").str, "nas");
  // ns -> us with the ns kept as the fractional part.
  EXPECT_DOUBLE_EQ(span.at("ts").number, 1.5);
  EXPECT_DOUBLE_EQ(span.at("dur").number, 2000.0);
  EXPECT_EQ(span.at("tid").number, 1.0);
  EXPECT_EQ(span.at("args").at("config").str, "k3_s1");
  // Empty args encoding omits the args object entirely.
  EXPECT_FALSE(items[4].has("args"));
}

TEST(ChromeTraceTest, EscapesSpecialCharactersInNames) {
  std::vector<SpanEvent> events;
  events.push_back(make_event("quote\"back\\slash", "cat", "k=v\"w", 0, 1, 1));
  const std::string json = chrome_trace_json(events);
  const JsonValue root = JsonParser(json).parse();
  const auto& items = root.at("traceEvents").array;
  // items[0..1] are metadata; the span follows.
  const JsonValue& span = items.back();
  EXPECT_EQ(span.at("name").str, "quote\"back\\slash");
  EXPECT_EQ(span.at("args").at("k").str, "v\"w");
}

TEST(ChromeTraceTest, RecorderSnapshotExportParses) {
  TraceRecorder::global().enable();
  {
    Span outer("serve", "serve.batch.execute");
    outer.arg("model", "drainage");
    Span inner("graph", "graph.execute");
  }
  TraceRecorder::global().disable();
  const JsonValue root =
      JsonParser(chrome_trace_json(TraceRecorder::global().snapshot()))
          .parse();
  TraceRecorder::global().clear();
  int x_events = 0;
  for (const auto& item : root.at("traceEvents").array) {
    if (item.at("ph").str == "X") ++x_events;
  }
  EXPECT_EQ(x_events, 2);
}

}  // namespace
}  // namespace dcnas::obs
