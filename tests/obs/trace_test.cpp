#include "dcnas/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Binary-wide allocation counter so DisabledSpansDoNotAllocate can assert
// the disabled record path is allocation-free (constraint #1 in trace.hpp).
namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dcnas::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::global().disable();
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(TraceRecorder::enabled());
  {
    Span s("test", "ignored");
    s.arg("key", "value");
    EXPECT_FALSE(s.armed());
  }
  EXPECT_TRUE(TraceRecorder::global().snapshot().empty());
}

TEST_F(TraceTest, DisabledSpansDoNotAllocate) {
  ASSERT_FALSE(TraceRecorder::enabled());
  const std::int64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    Span s("test", "hot.path.span");
    s.arg("iteration", static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(g_allocations.load(), before);
}

TEST_F(TraceTest, RecordsNestedSpansWithDepth) {
  TraceRecorder::global().enable();
  {
    Span outer("test", "outer");
    {
      Span inner("test", "inner");
      { DCNAS_TRACE_SPAN("test", "leaf"); }
    }
  }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() sorts parents before children.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "leaf");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 2u);
  // Each parent interval encloses its child.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
    EXPECT_GE(events[i - 1].start_ns + events[i - 1].duration_ns,
              events[i].start_ns + events[i].duration_ns);
  }
}

TEST_F(TraceTest, SpanArgsAreRecorded) {
  TraceRecorder::global().enable();
  {
    Span s("test", "with.args");
    EXPECT_TRUE(s.armed());
    s.arg("model", "drainage");
    s.arg("rows", std::int64_t{8});
  }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].args, "model=drainage,rows=8");
}

TEST_F(TraceTest, OversizedArgPairIsDroppedWhole) {
  TraceRecorder::global().enable();
  {
    Span s("test", "truncating");
    s.arg("fits", "yes");
    s.arg("huge", std::string(2 * SpanEvent::kArgsCapacity, 'x'));
    s.arg("after", "kept");
  }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  // The pair that cannot fit is dropped entirely — no half-written "huge=xx".
  EXPECT_STREQ(events[0].args, "fits=yes,after=kept");
}

TEST_F(TraceTest, LongNamesAreTruncatedNotCorrupted) {
  TraceRecorder::global().enable();
  const std::string long_name(3 * SpanEvent::kNameCapacity, 'n');
  { Span s("test", long_name); }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name),
            long_name.substr(0, SpanEvent::kNameCapacity - 1));
}

TEST_F(TraceTest, ConcurrentSpansStayWellNestedPerThread) {
  TraceRecorder::global().enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread / 2; ++i) {
        Span outer("test", "outer." + std::to_string(t));
        Span inner("test", "inner." + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = TraceRecorder::global().snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(TraceRecorder::global().thread_count(),
            static_cast<std::size_t>(kThreads));
  EXPECT_EQ(TraceRecorder::global().dropped_count(), 0u);

  // Within each thread, spans must form a proper interval nesting: replay
  // the (sorted) events against a stack of open intervals.
  std::map<std::uint32_t, std::vector<const SpanEvent*>> by_thread;
  for (const auto& e : events) by_thread[e.thread_id].push_back(&e);
  for (auto& [tid, spans] : by_thread) {
    // Clock granularity can give a parent and child identical start ticks;
    // depth breaks the tie so the replay below sees parents first.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent* a, const SpanEvent* b) {
                       if (a->start_ns != b->start_ns)
                         return a->start_ns < b->start_ns;
                       if (a->duration_ns != b->duration_ns)
                         return a->duration_ns > b->duration_ns;
                       return a->depth < b->depth;
                     });
    std::vector<std::uint64_t> open_ends;
    for (const SpanEvent* e : spans) {
      const std::uint64_t end = e->start_ns + e->duration_ns;
      while (!open_ends.empty() && open_ends.back() <= e->start_ns) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(end, open_ends.back())
            << "span overlaps its parent in thread " << tid;
      }
      EXPECT_EQ(e->depth, open_ends.size());
      open_ends.push_back(end);
    }
  }
}

TEST_F(TraceTest, FullRingKeepsLatestAndCountsDrops) {
  TraceOptions opt;
  opt.ring_capacity = 64;
  TraceRecorder::global().enable(opt);
  constexpr int kTotal = 200;
  for (int i = 0; i < kTotal; ++i) {
    Span s("test", "span." + std::to_string(i));
  }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), opt.ring_capacity);
  EXPECT_EQ(TraceRecorder::global().dropped_count(),
            static_cast<std::uint64_t>(kTotal) - opt.ring_capacity);
  // Keep-latest policy: the oldest surviving span is span.136.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(std::string(events[i].name),
              "span." + std::to_string(kTotal - static_cast<int>(
                                                    opt.ring_capacity) +
                                       static_cast<int>(i)));
  }
}

TEST_F(TraceTest, EnableDiscardsPreviousEventsDisableKeepsThem) {
  TraceRecorder::global().enable();
  { Span s("test", "first"); }
  TraceRecorder::global().disable();
  ASSERT_EQ(TraceRecorder::global().snapshot().size(), 1u);

  // Spans while disabled leave the kept events untouched.
  { Span s("test", "while.disabled"); }
  ASSERT_EQ(TraceRecorder::global().snapshot().size(), 1u);

  TraceRecorder::global().enable();
  EXPECT_TRUE(TraceRecorder::global().snapshot().empty());
  { Span s("test", "second"); }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second");
}

}  // namespace
}  // namespace dcnas::obs
