#include <gtest/gtest.h>

#include <set>

#include "dcnas/common/stats.hpp"
#include "dcnas/nas/experiment.hpp"
#include "dcnas/nas/nsga2.hpp"
#include "dcnas/nas/oracle.hpp"
#include "dcnas/nas/search_space.hpp"

namespace dcnas::nas {
namespace {

TrialConfig int8_twin(TrialConfig c) {
  c.precision = 1;
  return c;
}

TEST(PrecisionAxisTest, ConfigValidatesAndKeysDistinguishPrecision) {
  TrialConfig fp32 = TrialConfig::baseline(7, 16);
  const TrialConfig int8 = int8_twin(fp32);
  int8.validate();
  EXPECT_TRUE(int8.int8());
  // The architecture is shared; only the lattice key (the trial-cache key)
  // gains the "_q8" suffix.
  EXPECT_EQ(fp32.canonical_arch_key(), int8.canonical_arch_key());
  EXPECT_EQ(int8.lattice_key(), fp32.lattice_key() + "_q8");
  // encode() is precision-free by design: the oracle's noise draws are
  // shared between the twins.
  EXPECT_EQ(fp32.encode(), int8.encode());
  TrialConfig bad = fp32;
  bad.precision = 3;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(PrecisionAxisTest, OracleDropIsDeterministicAndWithinOnePercent) {
  const AccuracyOracle oracle{OracleOptions{}};
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const TrialConfig fp32 = SearchSpace::sample(rng, 7, 16);
    const TrialConfig int8 = int8_twin(fp32);
    EXPECT_EQ(oracle.quantization_drop(fp32), 0.0);
    const double drop = oracle.quantization_drop(int8);
    EXPECT_GE(drop, 0.15);
    EXPECT_LE(drop, 0.70);  // well inside QUANTIZATION.md's <= 1% bound
    EXPECT_EQ(oracle.quantization_drop(int8), drop);  // deterministic
    EXPECT_DOUBLE_EQ(oracle.expected_accuracy(int8),
                     oracle.expected_accuracy(fp32) - drop);
  }
}

TEST(PrecisionAxisTest, TwinsShareNoiseSoFoldGapEqualsTheDrop) {
  const AccuracyOracle oracle{OracleOptions{}};
  const TrialConfig fp32 = TrialConfig::baseline(5, 16);
  const TrialConfig int8 = int8_twin(fp32);
  const double drop = oracle.quantization_drop(int8);
  for (int fold = 0; fold < 5; ++fold) {
    const double a = oracle.fold_accuracy(fp32, fold);
    const double b = oracle.fold_accuracy(int8, fold);
    if (a >= 99.5 || a <= 50.0) continue;  // clamped folds break the identity
    EXPECT_NEAR(a - b, drop, 1e-9) << "fold " << fold;
  }
}

TEST(PrecisionAxisTest, CsvRoundTripPreservesPrecision) {
  TrialDatabase db;
  TrialRecord r;
  r.config = int8_twin(TrialConfig::baseline(7, 16));
  r.accuracy = 94.5;
  r.latency_ms = 20.0;
  r.lat_std = 5.0;
  r.memory_mb = 11.2;
  r.fold_accuracies = {94.0, 95.0};
  db.add(r);
  const TrialDatabase restored = TrialDatabase::from_csv(db.to_csv());
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.record(0).config.precision, 1);
}

TEST(PrecisionAxisTest, LegacyCsvWithoutPrecisionColumnLoadsAsFp32) {
  // Journals written before the precision axis have 14 columns.
  CsvTable legacy({"channels", "batch", "accuracy", "latency_ms", "lat_std",
                   "memory_mb", "kernel_size", "stride", "padding",
                   "pool_choice", "kernel_size_pool", "stride_pool",
                   "initial_output_feature", "fold_accuracies"});
  legacy.add_row({"7", "16", "94.5", "20.0", "5.0", "11.2", "3", "2", "1",
                  "0", "3", "2", "32", "94.0;95.0"});
  const TrialDatabase db = TrialDatabase::from_csv(legacy);
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.record(0).config.precision, 0);
}

TEST(PrecisionAxisTest, Int8TrialWinsLatencyAndMemoryCostsAccuracy) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  TrialConfig fp32 = TrialConfig::baseline(7, 16);
  fp32.initial_output_feature = 32;
  fp32.kernel_size = 3;
  fp32.padding = 1;
  const TrialRecord a = exp.run_trial(fp32);
  const TrialRecord b = exp.run_trial(int8_twin(fp32));
  // Hardware objectives: ~4x smaller conv weights, int8 conv roofs.
  EXPECT_LT(b.memory_mb, a.memory_mb * 0.4);
  EXPECT_LT(b.latency_ms, a.latency_ms);
  // Accuracy: the twin pays the quantization drop and nothing else.
  const double gap = a.accuracy - b.accuracy;
  EXPECT_GT(gap, 0.0);
  EXPECT_LE(gap, 1.0);
}

/// Synthetic evaluator with the same cost structure the Experiment
/// produces, but cheap enough for a whole NSGA-II run: int8 trials shed
/// latency and memory and pay the oracle's accuracy drop.
TrialRecord cheap_precision_eval(const TrialConfig& c) {
  static const AccuracyOracle oracle{OracleOptions{}};
  TrialRecord r;
  r.config = c;
  r.fold_accuracies = oracle.fold_accuracies(c);
  r.accuracy = mean(r.fold_accuracies);
  const double width = static_cast<double>(c.initial_output_feature);
  const double d = static_cast<double>(c.stem_downsample());
  r.latency_ms = width * width / 128.0 * (16.0 / (d * d)) + 2.0;
  r.memory_mb = width * width / 92.0;
  if (c.int8()) {
    r.latency_ms = r.latency_ms * 0.55 + 0.9;  // int8 roofs, no Winograd
    r.memory_mb /= 3.6;                        // 1-byte weights + scales
  }
  r.lat_std = r.latency_ms * 0.6;
  return r;
}

TEST(PrecisionAxisTest, SearchFindsInt8ParetoPointWithinOnePercentOfTwin) {
  Nsga2Options opt;
  opt.population_size = 16;
  opt.generations = 8;
  opt.seed = 5;
  opt.search_precision = true;
  Nsga2 search(cheap_precision_eval, opt);
  const Nsga2Result result = search.run();
  ASSERT_FALSE(result.front.empty());
  const AccuracyOracle oracle{OracleOptions{}};
  int int8_on_front = 0;
  for (const std::size_t i : result.front) {
    const TrialRecord& r = result.evaluated.record(i);
    if (!r.config.int8()) continue;
    ++int8_on_front;
    // The drop vs the fp32 twin stays within the paper-grade 1% budget.
    TrialConfig twin = r.config;
    twin.precision = 0;
    const double twin_acc = mean(oracle.fold_accuracies(twin));
    EXPECT_LE(twin_acc - r.accuracy, 1.0) << r.config.to_string();
  }
  // The int8 side dominates on latency/memory, so the front must keep at
  // least one quantized point.
  EXPECT_GE(int8_on_front, 1);
}

TEST(PrecisionAxisTest, DefaultSearchIsBitIdenticalToPrePrecisionRuns) {
  // search_precision defaults off: the RNG stream, the evaluated set, and
  // the front must be exactly what the fp32-only search always produced.
  Nsga2Options opt;
  opt.population_size = 16;
  opt.generations = 4;
  opt.seed = 9;
  Nsga2 a(cheap_precision_eval, opt);
  Nsga2 b(cheap_precision_eval, opt);
  const Nsga2Result ra = a.run();
  const Nsga2Result rb = b.run();
  ASSERT_EQ(ra.unique_evaluations, rb.unique_evaluations);
  for (std::size_t i = 0; i < ra.evaluated.size(); ++i) {
    EXPECT_EQ(ra.evaluated.record(i).config.lattice_key(),
              rb.evaluated.record(i).config.lattice_key());
    EXPECT_EQ(ra.evaluated.record(i).config.precision, 0);
  }
}

}  // namespace
}  // namespace dcnas::nas
