#include "dcnas/nas/evaluator.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/stats.hpp"

namespace dcnas::nas {
namespace {

geodata::DrainageDataset tiny_dataset(int channels) {
  geodata::DatasetOptions opt;
  opt.scale = 1.0 / 100.0;
  opt.chip_size = 16;
  opt.scene_size = 128;
  opt.channels = channels;
  opt.seed = 5;
  return geodata::build_dataset(opt);
}

TEST(OracleEvaluatorTest, MeanIsAverageOfFolds) {
  OracleEvaluator eval;
  const EvalResult r = eval.evaluate(TrialConfig::baseline(7, 16));
  ASSERT_EQ(r.fold_accuracies.size(), 5u);
  EXPECT_NEAR(r.mean_accuracy, mean(r.fold_accuracies), 1e-12);
  EXPECT_EQ(eval.name(), "oracle");
}

TEST(OracleEvaluatorTest, FoldCountFollowsOptions) {
  OracleOptions opt;
  opt.folds = 3;
  OracleEvaluator eval(opt);
  EXPECT_EQ(eval.evaluate(TrialConfig::baseline(5, 8)).fold_accuracies.size(),
            3u);
}

class TrainingEvaluatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds5_ = new geodata::DrainageDataset(tiny_dataset(5));
    ds7_ = new geodata::DrainageDataset(tiny_dataset(7));
  }
  static void TearDownTestSuite() {
    delete ds5_;
    delete ds7_;
    ds5_ = nullptr;
    ds7_ = nullptr;
  }
  static geodata::DrainageDataset* ds5_;
  static geodata::DrainageDataset* ds7_;
};

geodata::DrainageDataset* TrainingEvaluatorTest::ds5_ = nullptr;
geodata::DrainageDataset* TrainingEvaluatorTest::ds7_ = nullptr;

TEST_F(TrainingEvaluatorTest, TrainsAndBeatsChance) {
  TrainingEvaluator::Options opt;
  opt.folds = 2;
  // Small dataset needs a hotter, longer schedule; 12 epochs keeps the
  // accuracy threshold comfortably clear of run-to-run float jitter (FMA
  // contraction / summation order differ across ISAs and kernel blockings).
  opt.epochs = 12;
  opt.lr = 0.02;
  TrainingEvaluator eval(*ds5_, *ds7_, opt);
  TrialConfig cfg = TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  const EvalResult r = eval.evaluate(cfg);
  ASSERT_EQ(r.fold_accuracies.size(), 2u);
  // Balanced binary task: genuinely learned models beat 50% clearly.
  EXPECT_GT(r.mean_accuracy, 62.0);
  EXPECT_LE(r.mean_accuracy, 100.0);
  EXPECT_EQ(eval.name(), "training");
}

TEST_F(TrainingEvaluatorTest, UsesMatchingChannelDataset) {
  TrainingEvaluator::Options opt;
  opt.folds = 2;
  opt.epochs = 1;
  TrainingEvaluator eval(*ds5_, *ds7_, opt);
  TrialConfig cfg7 = TrialConfig::baseline(7, 8);
  cfg7.initial_output_feature = 32;
  cfg7.kernel_size = 3;
  cfg7.padding = 1;
  EXPECT_NO_THROW(eval.evaluate(cfg7));  // would throw on channel mismatch
}

TEST_F(TrainingEvaluatorTest, DeterministicPerSeed) {
  TrainingEvaluator::Options opt;
  opt.folds = 2;
  opt.epochs = 1;
  TrainingEvaluator e1(*ds5_, *ds7_, opt);
  TrainingEvaluator e2(*ds5_, *ds7_, opt);
  TrialConfig cfg = TrialConfig::baseline(5, 16);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  const EvalResult a = e1.evaluate(cfg);
  const EvalResult b = e2.evaluate(cfg);
  EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

TEST_F(TrainingEvaluatorTest, RejectsSwappedDatasets) {
  TrainingEvaluator::Options opt;
  EXPECT_THROW(TrainingEvaluator(*ds7_, *ds5_, opt), InvalidArgument);
}

TEST_F(TrainingEvaluatorTest, RejectsBadOptions) {
  TrainingEvaluator::Options opt;
  opt.folds = 1;
  EXPECT_THROW(TrainingEvaluator(*ds5_, *ds7_, opt), InvalidArgument);
  opt.folds = 2;
  opt.epochs = 0;
  EXPECT_THROW(TrainingEvaluator(*ds5_, *ds7_, opt), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nas
