#include "dcnas/nas/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace dcnas::nas {
namespace {

TEST(ExperimentTest, TrialRecordHasAllObjectives) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const TrialRecord r = exp.run_trial(TrialConfig::baseline(5, 16));
  EXPECT_GT(r.accuracy, 80.0);
  EXPECT_LT(r.accuracy, 100.0);
  EXPECT_EQ(r.fold_accuracies.size(), 5u);
  EXPECT_GT(r.latency_ms, 5.0);
  EXPECT_GT(r.lat_std, 0.0);
  ASSERT_EQ(r.per_device_ms.size(), 4u);
  EXPECT_EQ(r.per_device_ms[0].first, "cortexA76cpu");
  EXPECT_NEAR(r.memory_mb, 44.78, 0.2);
}

TEST(ExperimentTest, MemoryTracksWidthNotBatch) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  TrialConfig small = TrialConfig::baseline(5, 8);
  small.initial_output_feature = 32;
  small.kernel_size = 3;
  small.padding = 1;
  TrialConfig small_b32 = small;
  small_b32.batch = 32;
  const TrialRecord a = exp.run_trial(small);
  const TrialRecord b = exp.run_trial(small_b32);
  EXPECT_NEAR(a.memory_mb, 11.21, 0.1);
  EXPECT_DOUBLE_EQ(a.memory_mb, b.memory_mb);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);  // batch-1 inference latency
  EXPECT_NE(a.accuracy, b.accuracy);             // batch affects training
}

TEST(ExperimentTest, RunAllPreservesOrder) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  std::vector<TrialConfig> configs = {TrialConfig::baseline(5, 8),
                                      TrialConfig::baseline(7, 32)};
  const TrialDatabase db = exp.run_all(configs);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.record(0).config.channels, 5);
  EXPECT_EQ(db.record(1).config.channels, 7);
  EXPECT_EQ(db.record(1).config.batch, 32);
}

TEST(TrialDatabaseTest, BestAccuracySelectsMaximum) {
  TrialDatabase db;
  TrialRecord a;
  a.config = TrialConfig::baseline(5, 8);
  a.accuracy = 90.0;
  TrialRecord b;
  b.config = TrialConfig::baseline(7, 16);
  b.accuracy = 95.0;
  db.add(a);
  db.add(b);
  EXPECT_EQ(db.best_accuracy().config.channels, 7);
  EXPECT_THROW(TrialDatabase{}.best_accuracy(), InvalidArgument);
  EXPECT_THROW(db.record(2), InvalidArgument);
}

TEST(TrialDatabaseTest, CsvRoundTrip) {
  TrialDatabase db;
  TrialRecord r;
  r.config = TrialConfig::baseline(7, 16);
  r.config.kernel_size = 3;
  r.config.padding = 1;
  r.config.initial_output_feature = 32;
  r.accuracy = 96.13;
  r.fold_accuracies = {95.5, 96.2, 96.8, 96.0, 96.15};
  r.latency_ms = 8.19;
  r.lat_std = 4.59;
  r.memory_mb = 11.18;
  db.add(r);
  const TrialDatabase back = TrialDatabase::from_csv(db.to_csv());
  ASSERT_EQ(back.size(), 1u);
  const TrialRecord& rr = back.record(0);
  EXPECT_EQ(rr.config.lattice_key(), r.config.lattice_key());
  EXPECT_NEAR(rr.accuracy, 96.13, 1e-3);
  EXPECT_NEAR(rr.latency_ms, 8.19, 1e-3);
  EXPECT_NEAR(rr.memory_mb, 11.18, 1e-3);
  ASSERT_EQ(rr.fold_accuracies.size(), 5u);
  EXPECT_NEAR(rr.fold_accuracies[2], 96.8, 1e-3);
}

TEST(TrialDatabaseTest, SaveLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_trials_test.csv")
          .string();
  TrialDatabase db;
  TrialRecord r;
  r.config = TrialConfig::baseline(5, 8);
  r.accuracy = 92.9;
  r.fold_accuracies = {92.7, 93.1};  // loader rejects fold-less rows
  db.add(r);
  db.save(path);
  const TrialDatabase back = TrialDatabase::load(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_NEAR(back.record(0).accuracy, 92.9, 1e-6);
  std::remove(path.c_str());
}

TEST(TrialDatabaseTest, FromCsvValidatesConfig) {
  CsvTable t({"channels", "batch", "accuracy", "latency_ms", "lat_std",
              "memory_mb", "kernel_size", "stride", "padding", "pool_choice",
              "kernel_size_pool", "stride_pool", "initial_output_feature",
              "fold_accuracies"});
  t.add_row({"6", "8", "90", "10", "1", "11", "3", "2", "1", "0", "3", "2",
             "32", ""});
  EXPECT_THROW(TrialDatabase::from_csv(t), InvalidArgument);
}

namespace {
CsvTable trial_table() {
  return CsvTable({"channels", "batch", "accuracy", "latency_ms", "lat_std",
                   "memory_mb", "kernel_size", "stride", "padding",
                   "pool_choice", "kernel_size_pool", "stride_pool",
                   "initial_output_feature", "fold_accuracies"});
}

std::vector<std::string> good_row(const std::string& folds) {
  return {"5", "8", "90.1", "10.5", "1.2", "11.2", "3", "2",
          "1", "0", "3",    "2",    "32",   folds};
}
}  // namespace

TEST(TrialDatabaseTest, FromCsvRejectsBadNumericNamingRowAndColumn) {
  CsvTable t = trial_table();
  auto row = good_row("90.0;90.2;90.4");
  row[2] = "9O.1";  // letter O, not a digit
  t.add_row(row);
  try {
    TrialDatabase::from_csv(t);
    FAIL() << "bad numeric must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 0"), std::string::npos) << what;
    EXPECT_NE(what.find("accuracy"), std::string::npos) << what;
  }
}

TEST(TrialDatabaseTest, FromCsvRejectsTruncatedFoldList) {
  // A row whose fold list was cut mid-write: trailing separator leaves an
  // empty final cell.
  CsvTable t = trial_table();
  t.add_row(good_row("90.0;90.2;"));
  EXPECT_THROW(TrialDatabase::from_csv(t), InvalidArgument);
}

TEST(TrialDatabaseTest, FromCsvRejectsBadFoldNumericWithFoldIndex) {
  CsvTable t = trial_table();
  t.add_row(good_row("90.0;nan-ish;90.4"));
  try {
    TrialDatabase::from_csv(t);
    FAIL() << "bad fold numeric must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 0"), std::string::npos) << what;
    EXPECT_NE(what.find("fold 1"), std::string::npos) << what;
  }
}

TEST(TrialDatabaseTest, FromCsvRejectsFoldCountMismatchAcrossRows) {
  CsvTable t = trial_table();
  t.add_row(good_row("90.0;90.2;90.4;90.6;90.8"));
  t.add_row(good_row("91.0;91.2;91.4"));
  try {
    TrialDatabase::from_csv(t);
    FAIL() << "fold-count mismatch must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 1"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 5"), std::string::npos) << what;
  }
}

TEST(TrialDatabaseTest, FromCsvParsesLocaleIndependently) {
  // "1,5"-style locale output must be rejected, not half-parsed as 1.0.
  CsvTable t = trial_table();
  auto row = good_row("90.0;90.2;90.4");
  row[3] = "10,5";
  t.add_row(row);
  EXPECT_THROW(TrialDatabase::from_csv(t), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nas
