#include "dcnas/nas/store/trial_store.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/nas/experiment.hpp"
#include "dcnas/nas/journal.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nas/store/format.hpp"

namespace dcnas::nas {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("dcnas_store_test_" + name))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::vector<TrialConfig> sample_configs(std::size_t n, std::uint64_t seed) {
  auto configs = SearchSpace::enumerate_all();
  Rng rng(seed);
  rng.shuffle(configs);
  configs.resize(n);
  return configs;
}

JournalEntry make_entry(const Experiment& exp, const TrialConfig& config) {
  JournalEntry entry;
  entry.record = exp.run_trial(config);
  for (std::size_t f = 0; f < entry.record.fold_accuracies.size(); ++f) {
    entry.fold_indices.push_back(static_cast<int>(f));
  }
  return entry;
}

std::string csv_text(const TrialDatabase& db) { return db.to_csv().to_string(); }

TrialStoreOptions fast_options() {
  TrialStoreOptions opt;
  opt.fsync_each = false;  // crash-safety paths are tested explicitly below
  return opt;
}

// ---- basic commit / read / reopen ------------------------------------------

TEST(TrialStoreTest, AppendReadFindReopenRoundTrip) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(6, 11);
  const TempDir dir("roundtrip");
  {
    TrialStore store(dir.str(), fast_options());
    for (const auto& c : configs) store.append(make_entry(exp, c));
    EXPECT_EQ(store.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const JournalEntry got = store.read(i);
      EXPECT_EQ(got.record.config.lattice_key(), configs[i].lattice_key());
    }
    const JournalEntry* hit = store.find(configs[2].lattice_key());
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->record.config.lattice_key(), configs[2].lattice_key());
    EXPECT_EQ(store.find("no-such-key"), nullptr);
  }
  // Reopen: everything committed is still there, nothing to repair.
  TrialStore store(dir.str(), fast_options());
  EXPECT_EQ(store.size(), configs.size());
  EXPECT_EQ(store.recovery().torn_records, 0u);
  EXPECT_EQ(store.recovery().torn_string_bytes, 0u);
  EXPECT_FALSE(store.recovery().control_rebuilt);
  // Bit-exact doubles through the store: the assembled database's CSV is
  // byte-identical to a direct serial run over the same configs.
  EXPECT_EQ(csv_text(store.assemble(configs)), csv_text(exp.run_all(configs)));
}

TEST(TrialStoreTest, RecordsSpanMultipleChunkFiles) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(10, 13);
  const TempDir dir("chunks");
  TrialStoreOptions opt = fast_options();
  opt.chunk_capacity = 4;  // 10 records -> 3 chunk files
  {
    TrialStore store(dir.str(), opt);
    for (const auto& c : configs) store.append(make_entry(exp, c));
  }
  int chunk_files = 0;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    if (e.path().extension() == ".chunk") ++chunk_files;
  }
  EXPECT_EQ(chunk_files, 3);
  TrialStore store(dir.str(), opt);
  EXPECT_EQ(store.size(), configs.size());
  EXPECT_EQ(store.chunk_capacity(), 4u);
  EXPECT_EQ(csv_text(store.assemble(configs)), csv_text(exp.run_all(configs)));
}

TEST(TrialStoreTest, LastWriteWinsOnDuplicateKeys) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const TempDir dir("dupes");
  TrialStore store(dir.str(), fast_options());
  JournalEntry first = make_entry(exp, TrialConfig::baseline(5, 8));
  store.append(first);
  JournalEntry second = first;
  second.record.accuracy += 1.0;
  store.append(second);
  EXPECT_EQ(store.size(), 2u);
  const JournalEntry* hit = store.find(first.record.config.lattice_key());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->record.accuracy, second.record.accuracy);
  // to_database dedups to one record per key.
  EXPECT_EQ(store.to_database().size(), 1u);
}

TEST(TrialStoreTest, LatticeFingerprintMismatchThrows) {
  const TempDir dir("fingerprint");
  TrialStoreOptions create = fast_options();
  create.lattice_fingerprint = SearchSpaceSpec::paper().fingerprint();
  { TrialStore store(dir.str(), create); }
  TrialStoreOptions wrong = fast_options();
  wrong.lattice_fingerprint = SearchSpaceSpec::wide().fingerprint();
  EXPECT_THROW(TrialStore(dir.str(), wrong), InvalidArgument);
  // 0 = accept whatever is stamped; the stamp survives.
  TrialStore reopen(dir.str(), fast_options());
  EXPECT_EQ(reopen.lattice_fingerprint(), create.lattice_fingerprint);
}

// ---- crash recovery ---------------------------------------------------------

TEST(TrialStoreTest, TornTailBeyondCommitPointIsDiscarded) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(5, 17);
  const TempDir dir("torn");
  std::string expected_csv;
  {
    TrialStore store(dir.str(), fast_options());
    for (const auto& c : configs) store.append(make_entry(exp, c));
    expected_csv = csv_text(store.assemble(configs));
  }
  // Simulate a crash mid-commit: string bytes and a partial slot landed on
  // disk but the control block was never advanced.
  const JournalEntry torn = make_entry(exp, TrialConfig::baseline(7, 16));
  std::string pool_bytes;
  store::TrialSlot slot = TrialStore::encode_slot(torn, 0, &pool_bytes);
  {
    std::ofstream pool(fs::path(dir.str()) / "strings.pool",
                       std::ios::binary | std::ios::app);
    pool.write(pool_bytes.data(),
               static_cast<std::streamsize>(pool_bytes.size()));
  }
  {
    std::fstream chunk(fs::path(dir.str()) / "trials-00000.chunk",
                       std::ios::binary | std::ios::in | std::ios::out);
    chunk.seekp(static_cast<std::streamoff>(configs.size() *
                                            sizeof(store::TrialSlot)));
    // Half the slot: a torn record whose CRC cannot validate.
    chunk.write(reinterpret_cast<const char*>(&slot), sizeof(slot) / 2);
  }
  TrialStore store(dir.str(), fast_options());
  EXPECT_EQ(store.size(), configs.size());
  EXPECT_EQ(store.recovery().torn_string_bytes, pool_bytes.size());
  EXPECT_EQ(store.recovery().torn_records, 1u);
  EXPECT_FALSE(store.recovery().control_rebuilt);
  EXPECT_EQ(csv_text(store.assemble(configs)), expected_csv);
  // The store accepts fresh appends after the repair.
  store.append(torn);
  EXPECT_EQ(store.size(), configs.size() + 1);
  EXPECT_NE(store.find(torn.record.config.lattice_key()), nullptr);
}

TEST(TrialStoreTest, CorruptControlBlockIsRebuiltFromChunkScan) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(7, 19);
  const TempDir dir("rebuild");
  std::string expected_csv;
  {
    TrialStore store(dir.str(), fast_options());
    for (const auto& c : configs) store.append(make_entry(exp, c));
    expected_csv = csv_text(store.assemble(configs));
  }
  // Simulate a crash during the control pwrite: flip a counter byte so the
  // control CRC no longer validates.
  {
    std::fstream ctrl(fs::path(dir.str()) / "store.ctrl",
                      std::ios::binary | std::ios::in | std::ios::out);
    ctrl.seekp(static_cast<std::streamoff>(
        offsetof(store::ControlBlock, committed_records)));
    const char garbage = '\x5a';
    ctrl.write(&garbage, 1);
  }
  TrialStore store(dir.str(), fast_options());
  EXPECT_TRUE(store.recovery().control_rebuilt);
  EXPECT_EQ(store.size(), configs.size());
  EXPECT_EQ(csv_text(store.assemble(configs)), expected_csv);
}

TEST(TrialStoreTest, CorruptControlWithNoChunksThrows) {
  const TempDir dir("headless");
  { TrialStore store(dir.str(), fast_options()); }  // empty store, no chunks
  {
    std::fstream ctrl(fs::path(dir.str()) / "store.ctrl",
                      std::ios::binary | std::ios::in | std::ios::out);
    const char garbage = '\x5a';
    ctrl.write(&garbage, 1);  // break the magic (and the CRC with it)
  }
  // Nothing to rebuild from — refuse rather than silently recreate (the
  // caller may be pointing at the wrong directory).
  EXPECT_THROW(TrialStore(dir.str(), fast_options()), InvalidArgument);
}

// ---- multi-process ----------------------------------------------------------

TEST(TrialStoreTest, TwoProcessWritersProduceOneConsistentStore) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(12, 23);
  const TempDir dir("multiproc");
  // Parent pre-creates the store so children race only on appends.
  { TrialStore store(dir.str(), fast_options()); }

  std::vector<pid_t> pids;
  for (int w = 0; w < 2; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: append a stride-sharded half of the configs. fsync stays on
      // here — the locked write->fsync->publish path is what's under test.
      try {
        TrialStore store(dir.str());
        for (std::size_t i = static_cast<std::size_t>(w); i < configs.size();
             i += 2) {
          store.append(make_entry(exp, configs[i]));
        }
        std::_Exit(0);
      } catch (...) {
        std::_Exit(1);
      }
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  TrialStore store(dir.str(), fast_options());
  EXPECT_EQ(store.size(), configs.size());
  // Interleaving across processes is nondeterministic, but the assembled
  // (lattice-ordered) view is byte-identical to the serial run regardless.
  EXPECT_EQ(csv_text(store.assemble(configs)), csv_text(exp.run_all(configs)));
}

TEST(TrialStoreTest, RefreshSeesOtherHandlesCommits) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const TempDir dir("refresh");
  TrialStore reader(dir.str(), fast_options());
  TrialStore writer(dir.str(), fast_options());
  const JournalEntry entry = make_entry(exp, TrialConfig::baseline(5, 8));
  writer.append(entry);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.refresh(), 1u);
  EXPECT_EQ(reader.size(), 1u);
  EXPECT_NE(reader.find(entry.record.config.lattice_key()), nullptr);
}

// ---- migration paths --------------------------------------------------------

TEST(TrialStoreTest, CsvStoreCsvRoundTripOnFullPaperDatabase) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const TrialDatabase db = exp.run_all(SearchSpace::enumerate_all());
  ASSERT_EQ(db.size(), 1728u);
  const TempDir dir("csvtrip");
  TrialStore store(dir.str(), fast_options());
  store.import_database(db);
  EXPECT_EQ(store.size(), db.size());
  // CSV -> store -> CSV is the identity, byte for byte: every double
  // travels as its IEEE-754 bit pattern.
  EXPECT_EQ(csv_text(store.assemble(SearchSpace::enumerate_all())),
            csv_text(db));
  EXPECT_EQ(csv_text(store.to_database()), csv_text(db));
}

TEST(TrialStoreTest, JournalImportMigratesEveryEntry) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(8, 29);
  const TempDir dir("journal");
  const std::string journal_path =
      (fs::path(dir.str()) / "legacy.dcj").string();
  fs::create_directories(dir.str());
  {
    TrialJournal journal(journal_path, /*fsync_each=*/false);
    for (const auto& c : configs) journal.append(make_entry(exp, c));
  }
  const std::string store_dir = (fs::path(dir.str()) / "store").string();
  TrialStore store(store_dir, fast_options());
  store.import_journal(journal_path);
  EXPECT_EQ(store.size(), configs.size());
  EXPECT_EQ(csv_text(store.assemble(configs)), csv_text(exp.run_all(configs)));
}

}  // namespace
}  // namespace dcnas::nas
