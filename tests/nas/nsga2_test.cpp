#include "dcnas/nas/nsga2.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dcnas/common/stats.hpp"

namespace dcnas::nas {
namespace {

/// Cheap synthetic evaluator: oracle accuracy (noise-free-ish) plus
/// analytic latency/memory stand-ins so the test needs no NnMeter.
TrialRecord cheap_eval(const TrialConfig& c) {
  static const AccuracyOracle oracle{OracleOptions{}};
  TrialRecord r;
  r.config = c;
  r.fold_accuracies = oracle.fold_accuracies(c);
  r.accuracy = mean(r.fold_accuracies);
  // Latency proxy: proportional to width^2 and stem resolution.
  const double width = static_cast<double>(c.initial_output_feature);
  const double d = static_cast<double>(c.stem_downsample());
  r.latency_ms = width * width / 128.0 * (16.0 / (d * d)) + 2.0;
  r.lat_std = r.latency_ms * 0.6;
  r.memory_mb = width * width / 92.0;
  return r;
}

Nsga2Options quick_options() {
  Nsga2Options opt;
  opt.population_size = 16;
  opt.generations = 8;
  opt.seed = 5;
  return opt;
}

TEST(Nsga2Test, RunProducesValidFront) {
  Nsga2 search(cheap_eval, quick_options());
  const Nsga2Result result = search.run();
  EXPECT_GT(result.unique_evaluations, 16u);
  EXPECT_LE(result.unique_evaluations,
            16u + 16u * 8u);  // at most pop + offspring evals
  ASSERT_FALSE(result.front.empty());
  // Front members really are non-dominated within the evaluated set.
  std::vector<pareto::Objectives> pts;
  for (const auto& r : result.evaluated.records()) {
    pts.push_back({r.accuracy, r.latency_ms, r.memory_mb});
  }
  for (std::size_t i : result.front) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_FALSE(
          pareto::dominates(pts[j], pts[i], pareto::DominanceMode::kWeak));
    }
  }
}

TEST(Nsga2Test, CachingPreventsDuplicateEvaluations) {
  int calls = 0;
  auto counting_eval = [&calls](const TrialConfig& c) {
    ++calls;
    return cheap_eval(c);
  };
  Nsga2 search(counting_eval, quick_options());
  const Nsga2Result result = search.run();
  EXPECT_EQ(static_cast<std::size_t>(calls), result.unique_evaluations);
  // Sanity: the cache actually deduplicated something (evolution revisits).
  EXPECT_LT(result.unique_evaluations, 16u + 16u * 8u);
  // All evaluated lattice keys unique.
  std::set<std::string> keys;
  for (const auto& r : result.evaluated.records()) {
    EXPECT_TRUE(keys.insert(r.config.lattice_key()).second);
  }
}

TEST(Nsga2Test, HypervolumeTrendsUpward) {
  Nsga2Options opt = quick_options();
  opt.generations = 10;
  Nsga2 search(cheap_eval, opt);
  const Nsga2Result result = search.run();
  ASSERT_EQ(result.hypervolume_history.size(), 10u);
  // Non-strict monotonicity is not guaranteed per-generation (the metric
  // tracks the *population* front), but the final value must beat the
  // first and be positive.
  EXPECT_GT(result.hypervolume_history.back(), 0.0);
  EXPECT_GE(result.hypervolume_history.back(),
            result.hypervolume_history.front());
}

TEST(Nsga2Test, FindsTheAccurateCheapCorner) {
  // With the proxy objectives, w32/high-downsample configs dominate: the
  // final front should be mostly width 32.
  Nsga2Options opt = quick_options();
  opt.generations = 12;
  Nsga2 search(cheap_eval, opt);
  const Nsga2Result result = search.run();
  int w32 = 0;
  for (std::size_t i : result.front) {
    w32 += result.evaluated.record(i).config.initial_output_feature == 32;
  }
  EXPECT_GT(2 * w32, static_cast<int>(result.front.size()));
}

TEST(Nsga2Test, DeterministicPerSeed) {
  Nsga2 a(cheap_eval, quick_options());
  Nsga2 b(cheap_eval, quick_options());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.unique_evaluations, rb.unique_evaluations);
  EXPECT_EQ(ra.front, rb.front);
  EXPECT_EQ(ra.hypervolume_history, rb.hypervolume_history);
}

TEST(Nsga2Test, CrossoverStaysInLattice) {
  Nsga2 search(cheap_eval, quick_options());
  Rng rng(3);
  const TrialConfig a = TrialConfig::baseline(5, 8);
  TrialConfig b = TrialConfig::baseline(7, 32);
  b.kernel_size = 3;
  b.padding = 1;
  b.initial_output_feature = 32;
  for (int i = 0; i < 100; ++i) {
    const TrialConfig child = search.crossover(a, b, rng);
    EXPECT_NO_THROW(child.validate());
    // Every dimension comes from one of the parents.
    EXPECT_TRUE(child.kernel_size == a.kernel_size ||
                child.kernel_size == b.kernel_size);
    EXPECT_TRUE(child.channels == a.channels || child.channels == b.channels);
  }
}

TEST(Nsga2Test, MutationChangesOneDimension) {
  Nsga2Options opt = quick_options();
  opt.search_input_combos = false;
  Nsga2 search(cheap_eval, opt);
  Rng rng(4);
  const TrialConfig parent = TrialConfig::baseline(5, 8);
  for (int i = 0; i < 50; ++i) {
    const TrialConfig child = search.mutate(parent, rng);
    EXPECT_EQ(child.channels, parent.channels);  // input combo frozen
    EXPECT_EQ(child.batch, parent.batch);
    EXPECT_NE(child.lattice_key(), parent.lattice_key());
  }
}

TEST(Nsga2Test, RejectsBadOptions) {
  Nsga2Options opt;
  opt.population_size = 2;
  EXPECT_THROW(Nsga2(cheap_eval, opt), InvalidArgument);
  opt = Nsga2Options{};
  opt.generations = 0;
  EXPECT_THROW(Nsga2(cheap_eval, opt), InvalidArgument);
  opt = Nsga2Options{};
  opt.crossover_rate = 1.5;
  EXPECT_THROW(Nsga2(cheap_eval, opt), InvalidArgument);
}

TEST(Nsga2SchedulerTest, BatchEvaluationMatchesSerialExactly) {
  OracleEvaluator eval;
  const Experiment experiment(eval, latency::NnMeter::shared());
  Nsga2Options opt;
  opt.population_size = 12;
  opt.generations = 4;
  opt.seed = 9;

  Nsga2 serial(experiment, opt);
  const Nsga2Result serial_result = serial.run();

  SchedulerOptions sopt;
  sopt.threads = 4;
  TrialScheduler scheduler(experiment, sopt);
  Nsga2 batched(experiment, scheduler, opt);
  const Nsga2Result batch_result = batched.run();

  // Same unique trials, same database order, same front, same trajectory.
  EXPECT_EQ(batch_result.unique_evaluations, serial_result.unique_evaluations);
  EXPECT_EQ(batch_result.evaluated.to_csv().to_string(),
            serial_result.evaluated.to_csv().to_string());
  EXPECT_EQ(batch_result.front, serial_result.front);
  EXPECT_EQ(batch_result.hypervolume_history,
            serial_result.hypervolume_history);
}

TEST(Nsga2SchedulerTest, RefusesPruningScheduler) {
  OracleEvaluator eval;
  const Experiment experiment(eval, latency::NnMeter::shared());
  SchedulerOptions sopt;
  sopt.pruner.enabled = true;
  TrialScheduler scheduler(experiment, sopt);
  EXPECT_THROW(Nsga2(experiment, scheduler, quick_options()), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nas
