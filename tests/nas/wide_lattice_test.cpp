#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "dcnas/common/rng.hpp"
#include "dcnas/nas/scheduler.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nas/store/trial_store.hpp"

namespace dcnas::nas {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("dcnas_wide_test_" + name))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::string csv_text(const TrialDatabase& db) { return db.to_csv().to_string(); }

// ---- spec identity ----------------------------------------------------------

TEST(SearchSpaceSpecTest, PaperSpecReproducesLegacyEnumerationExactly) {
  const SearchSpaceSpec spec = SearchSpaceSpec::paper();
  spec.validate();
  EXPECT_EQ(spec.size(), SearchSpace::lattice_size());
  const auto legacy = SearchSpace::enumerate_all();
  ASSERT_EQ(spec.size(), static_cast<std::int64_t>(legacy.size()));
  // at(i) decodes index i to the exact config the historical enumeration
  // put at position i — the property that makes store/scheduler replays of
  // spec-driven sweeps byte-compatible with every pre-spec artifact.
  for (std::int64_t i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(spec.at(i).lattice_key(), legacy[static_cast<std::size_t>(i)]
                                            .lattice_key())
        << "index " << i;
  }
}

TEST(SearchSpaceSpecTest, WideSpecSpans138240ConfigsAndContainsThePaper) {
  const SearchSpaceSpec wide = SearchSpaceSpec::wide();
  wide.validate();
  EXPECT_EQ(wide.size(), 138240);
  // Every paper lattice point is also a wide lattice point (the wide specs'
  // option lists are supersets), so a paper store can seed a wide sweep.
  for (const auto& config : SearchSpace::enumerate_all()) {
    ASSERT_TRUE(wide.contains(config)) << config.lattice_key();
  }
  // ... but not vice versa.
  TrialConfig off_paper = TrialConfig::baseline(5, 8);
  off_paper.kernel_size = 1;
  off_paper.padding = 0;
  off_paper.depth = 3;
  EXPECT_TRUE(wide.contains(off_paper));
  EXPECT_FALSE(SearchSpaceSpec::paper().contains(off_paper));
}

TEST(SearchSpaceSpecTest, AtDecodesEveryIndexToAValidMemberConfig) {
  const SearchSpaceSpec wide = SearchSpaceSpec::wide();
  Rng rng(59);
  std::set<std::string> seen;
  for (int n = 0; n < 512; ++n) {
    const std::int64_t i = static_cast<std::int64_t>(
        rng.uniform_int(0, static_cast<int>(wide.size() - 1)));
    const TrialConfig config = wide.at(i);
    config.validate_universe();
    EXPECT_TRUE(wide.contains(config)) << "index " << i;
    seen.insert(config.lattice_key());
  }
  // Distinct indices decode to distinct configs (keys collide only when
  // indices repeat — overwhelmingly unlikely to drop below this bound).
  EXPECT_GT(seen.size(), 500u);
  EXPECT_THROW(wide.at(-1), InvalidArgument);
  EXPECT_THROW(wide.at(wide.size()), InvalidArgument);
}

TEST(SearchSpaceSpecTest, FingerprintIsStableAndDistinguishesLattices) {
  EXPECT_EQ(SearchSpaceSpec::paper().fingerprint(),
            SearchSpaceSpec::paper().fingerprint());
  EXPECT_NE(SearchSpaceSpec::paper().fingerprint(),
            SearchSpaceSpec::wide().fingerprint());
  // Any dimension change changes the identity.
  SearchSpaceSpec tweaked = SearchSpaceSpec::paper();
  tweaked.widths.push_back(96);
  EXPECT_NE(tweaked.fingerprint(), SearchSpaceSpec::paper().fingerprint());
}

// ---- streaming --------------------------------------------------------------

TEST(LatticeStreamTest, StrideShardsPartitionTheLattice) {
  const SearchSpaceSpec spec = SearchSpaceSpec::paper();
  const int shards = 3;
  std::set<std::string> seen;
  std::int64_t yielded = 0;
  for (int w = 0; w < shards; ++w) {
    LatticeStream stream(spec, w, shards);
    while (auto config = stream.next()) {
      EXPECT_TRUE(seen.insert(config->lattice_key()).second)
          << "shard overlap at " << config->lattice_key();
      ++yielded;
    }
  }
  // Disjoint shards that together cover every lattice point exactly once.
  EXPECT_EQ(yielded, spec.size());
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), spec.size());
}

TEST(LatticeStreamTest, TotalReportsShardSize) {
  const SearchSpaceSpec spec = SearchSpaceSpec::paper();
  LatticeStream whole(spec);
  EXPECT_EQ(whole.total(), spec.size());
  LatticeStream shard(spec, 1, 5);
  std::int64_t count = 0;
  while (shard.next()) ++count;
  EXPECT_EQ(count, LatticeStream(spec, 1, 5).total());
}

// ---- streamed scheduling parity ---------------------------------------------

TEST(StreamedSchedulerTest, StreamedStoreRunMatchesSerialByteForByte) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  // A small sub-lattice keeps the test quick while spanning off-paper
  // dimensions (1x1 kernels, depth 1/3, int8) the wide lattice adds.
  SearchSpaceSpec spec;
  spec.channels = {5};
  spec.batches = {8, 16};
  spec.kernels = {1, 3};
  spec.strides = {1};
  spec.paddings = {0};
  spec.pool_choices = {1};
  spec.pool_kernels = {2};
  spec.pool_strides = {1};
  spec.widths = {32};
  spec.precisions = {0, 1};
  spec.depths = {1, 3};
  spec.validate();
  ASSERT_EQ(spec.size(), 16);

  const std::string serial = csv_text(exp.run_all(spec.enumerate()));
  const TempDir dir("stream_parity");
  SchedulerOptions opt;
  opt.threads = 2;
  opt.store_dir = dir.str();
  opt.fsync_store = false;
  opt.store_fingerprint = spec.fingerprint();
  {
    TrialScheduler scheduler(exp, opt);
    LatticeStream stream(spec);
    const SchedulerStats stats = scheduler.run_streamed(stream);
    EXPECT_EQ(stats.scheduled, static_cast<std::size_t>(spec.size()));
    EXPECT_EQ(stats.completed, static_cast<std::size_t>(spec.size()));
    EXPECT_EQ(stats.resumed, 0u);
  }
  TrialStoreOptions sopt;
  sopt.lattice_fingerprint = spec.fingerprint();
  sopt.fsync_each = false;
  const TrialStore store(dir.str(), sopt);
  EXPECT_EQ(csv_text(store.assemble(spec.enumerate())), serial);

  // A second streamed run over the same store resumes every trial.
  TrialScheduler again(exp, opt);
  LatticeStream stream(spec);
  const SchedulerStats stats = again.run_streamed(stream);
  EXPECT_EQ(stats.resumed, static_cast<std::size_t>(spec.size()));
  EXPECT_EQ(stats.scheduled, 0u);
}

TEST(StreamedSchedulerTest, RunStreamedRequiresAStore) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  TrialScheduler scheduler(exp, {});
  LatticeStream stream(SearchSpaceSpec::paper());
  EXPECT_THROW(scheduler.run_streamed(stream), InvalidArgument);
}

TEST(StreamedSchedulerTest, VectorRunWithStoreMatchesStreamedRun) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  auto configs = SearchSpace::enumerate_all();
  Rng rng(37);
  rng.shuffle(configs);
  configs.resize(16);

  const TempDir vec_dir("vec_store");
  const TempDir str_dir("str_store");
  SchedulerOptions opt;
  opt.threads = 2;
  opt.fsync_store = false;
  opt.store_dir = vec_dir.str();
  TrialScheduler vec_scheduler(exp, opt);
  const std::string via_run = csv_text(vec_scheduler.run(configs));

  opt.store_dir = str_dir.str();
  TrialScheduler str_scheduler(exp, opt);
  VectorStream stream(configs);
  str_scheduler.run_streamed(stream);
  TrialStoreOptions sopt;
  sopt.fsync_each = false;
  const TrialStore store(str_dir.str(), sopt);
  EXPECT_EQ(csv_text(store.assemble(configs)), via_run);
  EXPECT_EQ(via_run, csv_text(exp.run_all(configs)));
}

}  // namespace
}  // namespace dcnas::nas
