#include "dcnas/nas/oracle.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/stats.hpp"

namespace dcnas::nas {
namespace {

AccuracyOracle noise_free() {
  OracleOptions opt;
  opt.trial_noise_sigma = 0.0;
  opt.fold_noise_sigma = 0.0;
  return AccuracyOracle(opt);
}

TEST(OracleTest, Table5AnchorsReproducedExactly) {
  const AccuracyOracle oracle = noise_free();
  const double expected[2][3] = {{92.90, 93.60, 89.67},
                                 {94.76, 95.37, 94.51}};
  const int channels[] = {5, 7};
  const int batches[] = {8, 16, 32};
  for (int c = 0; c < 2; ++c) {
    for (int b = 0; b < 3; ++b) {
      const TrialConfig cfg = TrialConfig::baseline(channels[c], batches[b]);
      EXPECT_NEAR(oracle.expected_accuracy(cfg), expected[c][b], 1e-9);
    }
  }
}

TEST(OracleTest, Table4WinnerAnchor) {
  // The paper's best model: 7ch, batch 16, w32, k3, p1, pooled -> 96.13%.
  const AccuracyOracle oracle = noise_free();
  TrialConfig c = TrialConfig::baseline(7, 16);
  c.initial_output_feature = 32;
  c.kernel_size = 3;
  c.padding = 1;
  EXPECT_NEAR(oracle.expected_accuracy(c), 96.13, 0.01);
}

TEST(OracleTest, WorstCornerNearPaperMinimum) {
  // Table 3 minimum 76.19%: stride-1 no-pool k7 p3 w64 at (5ch, batch 32).
  const AccuracyOracle oracle = noise_free();
  TrialConfig c = TrialConfig::baseline(5, 32);
  c.stride = 1;
  c.pool_choice = 1;
  EXPECT_NEAR(oracle.expected_accuracy(c), 76.19, 2.0);
}

TEST(OracleTest, MonotoneTrends) {
  const AccuracyOracle oracle = noise_free();
  TrialConfig base = TrialConfig::baseline(5, 16);
  // 7 channels beat 5.
  TrialConfig seven = base;
  seven.channels = 7;
  EXPECT_GT(oracle.expected_accuracy(seven), oracle.expected_accuracy(base));
  // Width 32 beats 64 under the 5-epoch budget.
  TrialConfig narrow = base;
  narrow.initial_output_feature = 32;
  EXPECT_GT(oracle.expected_accuracy(narrow), oracle.expected_accuracy(base));
  // Kernel 3 beats 7; padding 1 beats 3.
  TrialConfig k3 = base;
  k3.kernel_size = 3;
  EXPECT_GT(oracle.expected_accuracy(k3), oracle.expected_accuracy(base));
  TrialConfig p1 = base;
  p1.padding = 1;
  EXPECT_GT(oracle.expected_accuracy(p1), oracle.expected_accuracy(base));
  // Downsampling collapse: d=1 far below d=4.
  TrialConfig d1 = base;
  d1.stride = 1;
  d1.pool_choice = 1;
  EXPECT_LT(oracle.expected_accuracy(d1),
            oracle.expected_accuracy(base) - 5.0);
}

TEST(OracleTest, FoldAccuraciesAreDeterministic) {
  const AccuracyOracle a{OracleOptions{}};
  const AccuracyOracle b{OracleOptions{}};
  const TrialConfig cfg = TrialConfig::baseline(7, 8);
  EXPECT_EQ(a.fold_accuracies(cfg), b.fold_accuracies(cfg));
}

TEST(OracleTest, SeedChangesNoise) {
  OracleOptions o1, o2;
  o2.seed = o1.seed + 1;
  const AccuracyOracle a(o1), b(o2);
  const TrialConfig cfg = TrialConfig::baseline(7, 8);
  EXPECT_NE(a.fold_accuracy(cfg, 0), b.fold_accuracy(cfg, 0));
}

TEST(OracleTest, NoiseMagnitudesMatchOptions) {
  OracleOptions opt;
  opt.trial_noise_sigma = 0.5;
  opt.fold_noise_sigma = 1.0;
  const AccuracyOracle oracle(opt);
  // Fold spread within one trial ~ fold sigma.
  std::vector<double> all_fold_stds;
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const TrialConfig cfg = SearchSpace::sample(rng, 5, 16);
    all_fold_stds.push_back(sample_stddev(oracle.fold_accuracies(cfg)));
  }
  const double typical = mean(all_fold_stds);
  EXPECT_GT(typical, 0.6);
  EXPECT_LT(typical, 1.4);
}

TEST(OracleTest, DuplicateNoPoolLatticePointsGetDistinctDraws) {
  // The paper's Table 4 rows 3 and 5 are the "same" architecture trained
  // as separate NNI trials; our oracle mirrors that.
  const AccuracyOracle oracle{OracleOptions{}};
  TrialConfig a = TrialConfig::baseline(5, 8);
  a.pool_choice = 1;
  TrialConfig b = a;
  b.stride_pool = 1;  // don't-care dimension
  EXPECT_EQ(a.canonical_arch_key(), b.canonical_arch_key());
  EXPECT_NE(oracle.fold_accuracy(a, 0), oracle.fold_accuracy(b, 0));
}

TEST(OracleTest, AccuraciesStayInValidRange) {
  const AccuracyOracle oracle{OracleOptions{}};
  for (const auto& cfg : SearchSpace::enumerate_all()) {
    for (int f = 0; f < 5; ++f) {
      const double acc = oracle.fold_accuracy(cfg, f);
      ASSERT_GE(acc, 50.0);
      ASSERT_LE(acc, 99.5);
    }
  }
}

TEST(OracleTest, RejectsBadFoldIndex) {
  const AccuracyOracle oracle{OracleOptions{}};
  const TrialConfig cfg = TrialConfig::baseline(5, 8);
  EXPECT_THROW(oracle.fold_accuracy(cfg, -1), InvalidArgument);
  EXPECT_THROW(oracle.fold_accuracy(cfg, 5), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nas
