#include "dcnas/nas/strategies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dcnas/nas/oracle.hpp"

namespace dcnas::nas {
namespace {

TEST(GridStrategyTest, EnumeratesExactly288Then_exhausts) {
  GridStrategy grid(5, 8);
  std::set<std::string> keys;
  int count = 0;
  while (!grid.exhausted()) {
    keys.insert(grid.ask().lattice_key());
    ++count;
  }
  EXPECT_EQ(count, 288);
  EXPECT_EQ(keys.size(), 288u);
  EXPECT_THROW(grid.ask(), InvalidArgument);
}

TEST(RandomStrategyTest, PermutationWithoutReplacement) {
  RandomStrategy rnd(7, 16, 42);
  std::set<std::string> keys;
  while (!rnd.exhausted()) keys.insert(rnd.ask().lattice_key());
  EXPECT_EQ(keys.size(), 288u);
}

TEST(RandomStrategyTest, SeedChangesOrder) {
  RandomStrategy a(5, 8, 1), b(5, 8, 2);
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    if (a.ask().lattice_key() != b.ask().lattice_key()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(EvolutionStrategyTest, MutationChangesExactlyOneDimension) {
  EvolutionStrategy::Options opt;
  EvolutionStrategy evo(5, 8, opt);
  Rng rng(9);
  const TrialConfig parent = TrialConfig::baseline(5, 8);
  for (int i = 0; i < 100; ++i) {
    const TrialConfig child = evo.mutate(parent, rng);
    int diffs = 0;
    diffs += child.kernel_size != parent.kernel_size;
    diffs += child.stride != parent.stride;
    diffs += child.padding != parent.padding;
    diffs += child.pool_choice != parent.pool_choice;
    diffs += child.kernel_size_pool != parent.kernel_size_pool;
    diffs += child.stride_pool != parent.stride_pool;
    diffs +=
        child.initial_output_feature != parent.initial_output_feature;
    EXPECT_EQ(diffs, 1);
    EXPECT_EQ(child.channels, parent.channels);
    EXPECT_EQ(child.batch, parent.batch);
  }
}

TEST(EvolutionStrategyTest, ImprovesOracleFitness) {
  // With the oracle as fitness, evolution should concentrate on w32/k3
  // configurations and beat random search's mean fitness.
  OracleOptions oopt;
  oopt.trial_noise_sigma = 0.2;
  oopt.fold_noise_sigma = 0.0;
  const AccuracyOracle oracle(oopt);
  auto fitness = [&](const TrialConfig& c) {
    return oracle.expected_accuracy(c);
  };

  EvolutionStrategy::Options opt;
  opt.population_size = 16;
  opt.tournament_size = 4;
  opt.seed = 11;
  EvolutionStrategy evo(7, 16, opt);
  double evo_best = 0.0;
  for (int i = 0; i < 120; ++i) {
    const TrialConfig c = evo.ask();
    const double f = fitness(c);
    evo.tell(c, f);
    evo_best = std::max(evo_best, f);
  }
  EXPECT_FALSE(evo.exhausted());
  // The optimum of the noise-free oracle at (7,16) is 96.13.
  EXPECT_GT(evo_best, 96.0);
}

TEST(EvolutionStrategyTest, WarmupSamplesBeforeMutating) {
  EvolutionStrategy::Options opt;
  opt.population_size = 4;
  opt.tournament_size = 2;
  opt.seed = 3;
  EvolutionStrategy evo(5, 32, opt);
  for (int i = 0; i < 4; ++i) {
    const TrialConfig c = evo.ask();
    EXPECT_EQ(c.batch, 32);
    evo.tell(c, 1.0);
  }
  EXPECT_NO_THROW(evo.ask());
}

TEST(EvolutionStrategyTest, RejectsBadOptions) {
  EvolutionStrategy::Options opt;
  opt.population_size = 1;
  EXPECT_THROW(EvolutionStrategy(5, 8, opt), InvalidArgument);
  opt.population_size = 8;
  opt.tournament_size = 9;
  EXPECT_THROW(EvolutionStrategy(5, 8, opt), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nas
