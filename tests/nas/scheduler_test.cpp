#include "dcnas/nas/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/common/strings.hpp"

namespace dcnas::nas {
namespace {

std::vector<TrialConfig> sample_configs(std::size_t n, std::uint64_t seed) {
  auto configs = SearchSpace::enumerate_all();
  Rng rng(seed);
  rng.shuffle(configs);
  configs.resize(n);
  return configs;
}

std::string csv_text(const TrialDatabase& db) { return db.to_csv().to_string(); }

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("dcnas_sched_test_" + name))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

// ---- determinism parity -----------------------------------------------------

TEST(SchedulerTest, ParityWithSerialAtEveryThreadCount) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(24, 3);
  const std::string serial = csv_text(exp.run_all(configs));
  for (std::size_t threads : {1u, 2u, 4u}) {
    SchedulerOptions opt;
    opt.threads = threads;
    TrialScheduler scheduler(exp, opt);
    const std::string parallel = csv_text(scheduler.run(configs));
    EXPECT_EQ(parallel, serial) << "thread count " << threads;
    EXPECT_EQ(scheduler.stats().scheduled, configs.size());
    EXPECT_EQ(scheduler.stats().completed, configs.size());
    EXPECT_EQ(scheduler.stats().pruned, 0u);
  }
}

TEST(SchedulerTest, EmptyConfigListYieldsEmptyDatabase) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  TrialScheduler scheduler(exp, {});
  EXPECT_EQ(scheduler.run({}).size(), 0u);
}

TEST(SchedulerTest, DuplicateConfigsKeepSubmissionOrder) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  std::vector<TrialConfig> configs = {TrialConfig::baseline(5, 8),
                                      TrialConfig::baseline(7, 16),
                                      TrialConfig::baseline(5, 8)};
  SchedulerOptions opt;
  opt.threads = 2;
  TrialScheduler scheduler(exp, opt);
  const std::string parallel = csv_text(scheduler.run(configs));
  EXPECT_EQ(parallel, csv_text(exp.run_all(configs)));
}

// ---- resume journal ---------------------------------------------------------

TEST(SchedulerTest, ResumesFromJournalWithoutReevaluating) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(12, 5);
  const TempPath journal("resume.dcj");

  SchedulerOptions opt;
  opt.threads = 2;
  opt.journal_path = journal.str();
  opt.fsync_journal = false;
  const std::string serial = csv_text(exp.run_all(configs));
  {
    TrialScheduler first(exp, opt);
    EXPECT_EQ(csv_text(first.run(configs)), serial);
    EXPECT_EQ(first.stats().resumed, 0u);
  }
  TrialScheduler second(exp, opt);
  EXPECT_EQ(csv_text(second.run(configs)), serial);
  EXPECT_EQ(second.stats().resumed, configs.size());
  EXPECT_EQ(second.stats().scheduled, 0u);
  EXPECT_EQ(second.stats().folds_evaluated, 0u);
}

TEST(SchedulerTest, ResumeAfterTornTailReevaluatesOnlyTheLostTrials) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(10, 7);
  const TempPath journal("torn.dcj");

  SchedulerOptions opt;
  opt.threads = 2;
  opt.journal_path = journal.str();
  opt.fsync_journal = false;
  const std::string serial = csv_text(exp.run_all(configs));
  {
    TrialScheduler first(exp, opt);
    EXPECT_EQ(csv_text(first.run(configs)), serial);
  }
  // Crash simulation: cut the file mid-way through the final line.
  const auto full_size = std::filesystem::file_size(journal.str());
  std::filesystem::resize_file(journal.str(), full_size - 20);

  TrialScheduler second(exp, opt);
  EXPECT_EQ(csv_text(second.run(configs)), serial);
  // Exactly one trial (the torn one) was re-evaluated.
  EXPECT_EQ(second.stats().resumed, configs.size() - 1);
  EXPECT_EQ(second.stats().scheduled, 1u);

  // And the journal healed: a third run resumes everything.
  TrialScheduler third(exp, opt);
  EXPECT_EQ(csv_text(third.run(configs)), serial);
  EXPECT_EQ(third.stats().resumed, configs.size());
}

TEST(SchedulerTest, JournaledRunSurvivesMidFileCorruption) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(6, 9);
  const TempPath journal("corrupt.dcj");

  SchedulerOptions opt;
  opt.threads = 2;
  opt.journal_path = journal.str();
  opt.fsync_journal = false;
  const std::string serial = csv_text(exp.run_all(configs));
  {
    TrialScheduler first(exp, opt);
    (void)first.run(configs);
  }
  // Flip a digit inside the third line's payload: its checksum now fails,
  // so that trial must be re-evaluated while the others resume.
  std::ifstream in(journal.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 4u);
  std::string& target = lines[3];
  const auto digit = target.find_first_of("0123456789", target.find(',') + 1);
  ASSERT_NE(digit, std::string::npos);
  target[digit] = target[digit] == '9' ? '1' : '9';
  {
    std::ofstream out(journal.str(), std::ios::trunc);
    for (const auto& line : lines) out << line << "\n";
  }

  TrialScheduler second(exp, opt);
  EXPECT_EQ(csv_text(second.run(configs)), serial);
  EXPECT_LT(second.stats().resumed, configs.size());
  EXPECT_GE(second.stats().resumed, 1u);
}

// ---- journal encode/decode --------------------------------------------------

TEST(TrialJournalTest, EncodeDecodeRoundTripsBitExactly) {
  JournalEntry entry;
  entry.record.config = TrialConfig::baseline(7, 16);
  entry.record.accuracy = 87.123456789012345;
  entry.record.latency_ms = 415.73415977261743;
  entry.record.lat_std = 285.0203368304029;
  entry.record.memory_mb = 44.804802;
  entry.record.fold_accuracies = {86.3766644856339, 85.95641759017106,
                                  86.38652171093284, 89.46831624538649,
                                  86.88766613705032};
  entry.record.per_device_ms = {{"cortexA76cpu", 325.48614348128393},
                                {"myriadvpu", 838.5355983578854}};
  entry.fold_indices = {0, 1, 2, 3, 4};

  const std::string line = TrialJournal::encode_line(entry);
  const auto decoded = TrialJournal::decode_line(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, TrialStatus::kOk);
  EXPECT_EQ(decoded->record.config.lattice_key(),
            entry.record.config.lattice_key());
  EXPECT_EQ(decoded->record.accuracy, entry.record.accuracy);
  EXPECT_EQ(decoded->record.latency_ms, entry.record.latency_ms);
  EXPECT_EQ(decoded->record.lat_std, entry.record.lat_std);
  EXPECT_EQ(decoded->record.memory_mb, entry.record.memory_mb);
  EXPECT_EQ(decoded->record.fold_accuracies, entry.record.fold_accuracies);
  EXPECT_EQ(decoded->record.per_device_ms, entry.record.per_device_ms);
  EXPECT_EQ(decoded->fold_indices, entry.fold_indices);
}

TEST(TrialJournalTest, PrunedEntryRoundTripsPartialFolds) {
  JournalEntry entry;
  entry.status = TrialStatus::kPruned;
  entry.record.config = TrialConfig::baseline(5, 8);
  entry.record.fold_accuracies = {81.5, 80.25};
  entry.record.accuracy = 80.875;
  entry.fold_indices = {0, 2};

  const auto decoded = TrialJournal::decode_line(TrialJournal::encode_line(entry));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, TrialStatus::kPruned);
  EXPECT_EQ(decoded->fold_indices, (std::vector<int>{0, 2}));
  EXPECT_EQ(decoded->record.fold_accuracies, (std::vector<double>{81.5, 80.25}));
}

TEST(TrialJournalTest, DecodeRejectsCorruptedLines) {
  JournalEntry entry;
  entry.record.config = TrialConfig::baseline(7, 32);
  entry.record.fold_accuracies = {85.0};
  entry.fold_indices = {0};
  const std::string line = TrialJournal::encode_line(entry);

  EXPECT_FALSE(TrialJournal::decode_line("").has_value());
  EXPECT_FALSE(TrialJournal::decode_line("garbage").has_value());
  EXPECT_FALSE(TrialJournal::decode_line(line.substr(0, line.size() - 3))
                   .has_value());
  std::string flipped = line;
  flipped[5] = flipped[5] == '7' ? '5' : '7';  // damage the payload
  EXPECT_FALSE(TrialJournal::decode_line(flipped).has_value());
}

TEST(TrialJournalTest, RejectsNonJournalFile) {
  const TempPath path("notajournal.dcj");
  {
    std::ofstream out(path.str());
    out << "channels,batch,accuracy\n5,8,90.0\n";
  }
  EXPECT_THROW(TrialJournal journal(path.str()), InvalidArgument);
}

// ---- median-stop pruning ----------------------------------------------------

TEST(MedianStopRuleTest, NeverFiresBeforeWarmupOrMinFolds) {
  MedianStopOptions opt;
  opt.enabled = true;
  opt.warmup_trials = 3;
  opt.min_folds = 2;
  MedianStopRule rule(opt);
  EXPECT_FALSE(rule.should_prune(0.0, 5));  // no curves yet
  rule.report_completed({90.0, 90.0, 90.0});
  rule.report_completed({91.0, 91.0, 91.0});
  EXPECT_FALSE(rule.should_prune(10.0, 3));  // below warmup
  rule.report_completed({92.0, 92.0, 92.0});
  EXPECT_FALSE(rule.should_prune(10.0, 1));  // below min_folds
  EXPECT_TRUE(rule.should_prune(10.0, 2));
}

TEST(MedianStopRuleTest, ComparesAgainstMedianAtTheSameStep) {
  MedianStopOptions opt;
  opt.enabled = true;
  opt.warmup_trials = 3;
  MedianStopRule rule(opt);
  rule.report_completed({80.0, 85.0});
  rule.report_completed({82.0, 86.0});
  rule.report_completed({84.0, 87.0});
  // Step-0 medians: 82; step-1: 86.
  EXPECT_TRUE(rule.should_prune(81.9, 1));
  EXPECT_FALSE(rule.should_prune(82.0, 1));
  EXPECT_TRUE(rule.should_prune(85.9, 2));
  EXPECT_FALSE(rule.should_prune(86.0, 2));
}

TEST(MedianStopRuleTest, MarginShiftsTheThreshold) {
  MedianStopOptions opt;
  opt.enabled = true;
  opt.warmup_trials = 3;
  opt.margin = 2.0;
  MedianStopRule rule(opt);
  rule.report_completed({80.0});
  rule.report_completed({82.0});
  rule.report_completed({84.0});
  EXPECT_FALSE(rule.should_prune(80.5, 1));  // above 82 - 2
  EXPECT_TRUE(rule.should_prune(79.9, 1));
}

TEST(SchedulerTest, PruningSkipsFoldsWithoutChangingSurvivors) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(48, 13);
  const TrialDatabase serial = exp.run_all(configs);
  std::map<std::string, const TrialRecord*> serial_by_key;
  for (const auto& r : serial.records()) {
    serial_by_key[r.config.lattice_key()] = &r;
  }

  SchedulerOptions opt;
  opt.threads = 4;
  opt.pruner.enabled = true;
  opt.pruner.warmup_trials = 4;
  opt.pruner.min_folds = 2;
  TrialScheduler scheduler(exp, opt);
  const TrialDatabase pruned = scheduler.run(configs);

  EXPECT_EQ(scheduler.stats().completed + scheduler.stats().pruned,
            configs.size());
  EXPECT_EQ(pruned.size(), scheduler.stats().completed);
  EXPECT_GT(scheduler.stats().pruned, 0u);
  EXPECT_GT(scheduler.stats().folds_skipped, 0u);
  // Every survivor's record is exactly the serial one.
  for (const auto& r : pruned.records()) {
    const auto it = serial_by_key.find(r.config.lattice_key());
    ASSERT_NE(it, serial_by_key.end());
    EXPECT_EQ(r.fold_accuracies, it->second->fold_accuracies);
    EXPECT_EQ(r.accuracy, it->second->accuracy);
    EXPECT_EQ(r.latency_ms, it->second->latency_ms);
    EXPECT_EQ(r.memory_mb, it->second->memory_mb);
  }
}

TEST(SchedulerTest, PrunedJournalEntriesResumeOnlyWithPrunerOn) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(32, 17);
  const TempPath journal("pruned.dcj");

  SchedulerOptions opt;
  opt.threads = 4;
  opt.journal_path = journal.str();
  opt.fsync_journal = false;
  opt.pruner.enabled = true;
  opt.pruner.warmup_trials = 4;
  opt.pruner.min_folds = 2;
  std::size_t pruned_count;
  {
    TrialScheduler first(exp, opt);
    (void)first.run(configs);
    pruned_count = first.stats().pruned;
  }
  ASSERT_GT(pruned_count, 0u);

  // Same pruner: everything resumes (ok and pruned entries alike).
  {
    TrialScheduler again(exp, opt);
    (void)again.run(configs);
    EXPECT_EQ(again.stats().resumed, configs.size());
  }

  // Pruner off (exact reproduction): pruned entries are *not* trusted —
  // they re-evaluate in full and the result matches the serial sweep.
  SchedulerOptions exact = opt;
  exact.pruner = {};
  TrialScheduler repro(exp, exact);
  const std::string serial = csv_text(exp.run_all(configs));
  EXPECT_EQ(csv_text(repro.run(configs)), serial);
  EXPECT_EQ(repro.stats().scheduled, pruned_count);
  EXPECT_EQ(repro.stats().resumed, configs.size() - pruned_count);
}

// ---- error propagation ------------------------------------------------------

class ThrowingEvaluator : public Evaluator {
 public:
  explicit ThrowingEvaluator(int bad_fold) : bad_fold_(bad_fold) {}
  EvalResult evaluate(const TrialConfig&) override { return {}; }
  int fold_count() const override { return 5; }
  double evaluate_fold(const TrialConfig&, int fold) override {
    if (fold == bad_fold_) throw InvalidArgument("fold exploded");
    return 85.0;
  }
  std::string name() const override { return "throwing"; }

 private:
  int bad_fold_;
};

TEST(SchedulerTest, EvaluatorExceptionAbortsAndRethrows) {
  ThrowingEvaluator eval(3);
  const Experiment exp(eval, latency::NnMeter::shared());
  const auto configs = sample_configs(16, 21);
  SchedulerOptions opt;
  opt.threads = 4;
  TrialScheduler scheduler(exp, opt);
  EXPECT_THROW(scheduler.run(configs), InvalidArgument);
  // The scheduler's pool drained cleanly: a second run on a healthy
  // evaluator-free path still works.
  EXPECT_EQ(scheduler.run({}).size(), 0u);
}

/// Delegates to the oracle except for one poisoned (config, fold) pair —
/// lets an abort happen mid-search while every other journaled value stays
/// the true oracle value.
class FlakyOracleEvaluator : public Evaluator {
 public:
  FlakyOracleEvaluator(std::string bad_key, int bad_fold)
      : bad_key_(std::move(bad_key)), bad_fold_(bad_fold) {}
  EvalResult evaluate(const TrialConfig& config) override {
    return inner_.evaluate(config);
  }
  int fold_count() const override { return inner_.fold_count(); }
  double evaluate_fold(const TrialConfig& config, int fold) override {
    if (config.lattice_key() == bad_key_ && fold == bad_fold_) {
      throw InvalidArgument("flaky fold");
    }
    return inner_.evaluate_fold(config, fold);
  }
  std::string name() const override { return inner_.name(); }

 private:
  OracleEvaluator inner_;
  std::string bad_key_;
  int bad_fold_;
};

TEST(SchedulerTest, AbortedRunNeverJournalsIncompleteTrials) {
  const auto configs = sample_configs(16, 31);
  const TempPath journal("abort.dcj");
  SchedulerOptions opt;
  opt.threads = 4;
  opt.journal_path = journal.str();
  opt.fsync_journal = false;

  // First run aborts mid-search: in-flight trials whose remaining folds
  // were skipped by the abort must not be journaled as ok (their missing
  // folds are zero-filled in memory).
  {
    FlakyOracleEvaluator flaky(configs[8].lattice_key(), 2);
    const Experiment exp(flaky, latency::NnMeter::shared());
    TrialScheduler scheduler(exp, opt);
    EXPECT_THROW(scheduler.run(configs), InvalidArgument);
  }

  // Resume with a healthy evaluator: every journal entry must hold fully
  // evaluated oracle values, so the merged database is exactly the serial
  // sweep. A zero-corrupted ok entry would survive resume verbatim and
  // break this parity.
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  const std::string serial = csv_text(exp.run_all(configs));
  TrialScheduler second(exp, opt);
  EXPECT_EQ(csv_text(second.run(configs)), serial);
  EXPECT_EQ(second.stats().resumed + second.stats().scheduled,
            configs.size());
}

TEST(SchedulerTest, FinalizeExceptionAbortsInsteadOfHanging) {
  OracleEvaluator eval;
  ExperimentOptions bad;
  bad.deployment_input_hw = 0;  // fill_hardware_objectives throws at finalize
  const Experiment exp(eval, latency::NnMeter::shared(), bad);
  SchedulerOptions opt;
  opt.threads = 2;
  TrialScheduler scheduler(exp, opt);
  // Pre-fix this deadlocked: the finalize exception escaped onto the pool
  // worker before the in-flight bookkeeping ran, so run() waited forever.
  EXPECT_THROW(scheduler.run(sample_configs(6, 29)), InvalidArgument);
}

TEST(SchedulerTest, InvalidConfigFailsVerificationBeforeEvaluation) {
  OracleEvaluator eval;
  const Experiment exp(eval, latency::NnMeter::shared());
  auto configs = sample_configs(4, 23);
  configs[2].kernel_size = 11;  // not a lattice value
  SchedulerOptions opt;
  opt.threads = 2;
  TrialScheduler scheduler(exp, opt);
  EXPECT_THROW(scheduler.run(configs), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::nas
