#include "dcnas/nas/search_space.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dcnas::nas {
namespace {

TEST(SearchSpaceTest, LatticeSizesMatchPaper) {
  // Figure 2: 288 configurations per input combination; 6 combinations.
  EXPECT_EQ(SearchSpace::architectures_per_combo(), 288);
  EXPECT_EQ(SearchSpace::lattice_size(), 1728);
  EXPECT_EQ(SearchSpace::enumerate_all().size(), 1728u);
  EXPECT_EQ(SearchSpace::enumerate_architectures(5, 8).size(), 288u);
}

TEST(SearchSpaceTest, NoPoolCollapseYields180UniqueArchitectures) {
  // 144 pooled + 36 unpooled per combination (§3.2's "certain
  // configurations may coincide due to the 'no pool' option").
  EXPECT_EQ(SearchSpace::unique_architectures_per_combo(), 180);
}

TEST(SearchSpaceTest, EnumerationHasNoDuplicateLatticePoints) {
  std::set<std::string> keys;
  for (const auto& c : SearchSpace::enumerate_all()) {
    EXPECT_TRUE(keys.insert(c.lattice_key()).second) << c.to_string();
  }
}

TEST(SearchSpaceTest, OptionSetsMatchFigure2) {
  EXPECT_EQ(SearchSpace::channel_options(), (std::vector<int>{5, 7}));
  EXPECT_EQ(SearchSpace::batch_options(), (std::vector<int>{8, 16, 32}));
  EXPECT_EQ(SearchSpace::kernel_options(), (std::vector<int>{3, 7}));
  EXPECT_EQ(SearchSpace::stride_options(), (std::vector<int>{1, 2}));
  EXPECT_EQ(SearchSpace::padding_options(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(SearchSpace::width_options(), (std::vector<int>{32, 48, 64}));
}

TEST(TrialConfigTest, BaselineIsStockResNet18) {
  const TrialConfig c = TrialConfig::baseline(7, 16);
  EXPECT_EQ(c.kernel_size, 7);
  EXPECT_EQ(c.stride, 2);
  EXPECT_EQ(c.padding, 3);
  EXPECT_EQ(c.pool_choice, 0);
  EXPECT_TRUE(c.with_pool());
  EXPECT_EQ(c.initial_output_feature, 64);
  EXPECT_EQ(c.stem_downsample(), 4);
}

TEST(TrialConfigTest, StemDownsampleCases) {
  TrialConfig c = TrialConfig::baseline(5, 8);
  EXPECT_EQ(c.stem_downsample(), 4);  // s2 x pool s2
  c.pool_choice = 1;
  EXPECT_EQ(c.stem_downsample(), 2);  // s2, no pool
  c.stride = 1;
  EXPECT_EQ(c.stem_downsample(), 1);  // s1, no pool
  c.pool_choice = 0;
  c.stride_pool = 1;
  EXPECT_EQ(c.stem_downsample(), 1);  // s1 x pool s1
}

TEST(TrialConfigTest, ToResNetConfigRoundTrip) {
  TrialConfig c = TrialConfig::baseline(5, 16);
  c.kernel_size = 3;
  c.padding = 1;
  c.initial_output_feature = 48;
  c.pool_choice = 1;
  const nn::ResNetConfig r = c.to_resnet_config();
  EXPECT_EQ(r.in_channels, 5);
  EXPECT_EQ(r.conv1_kernel, 3);
  EXPECT_EQ(r.conv1_padding, 1);
  EXPECT_FALSE(r.with_pool);
  EXPECT_EQ(r.init_width, 48);
  EXPECT_EQ(r.num_classes, 2);
}

TEST(TrialConfigTest, CanonicalKeyCollapsesNoPoolDontCares) {
  TrialConfig a = TrialConfig::baseline(5, 8);
  a.pool_choice = 1;
  TrialConfig b = a;
  b.kernel_size_pool = 2;
  b.stride_pool = 1;
  EXPECT_EQ(a.canonical_arch_key(), b.canonical_arch_key());
  EXPECT_NE(a.lattice_key(), b.lattice_key());
  // Pooled configs keep their pool dims in the key.
  a.pool_choice = 0;
  b.pool_choice = 0;
  EXPECT_NE(a.canonical_arch_key(), b.canonical_arch_key());
}

TEST(TrialConfigTest, CanonicalKeyIgnoresBatch) {
  TrialConfig a = TrialConfig::baseline(5, 8);
  TrialConfig b = TrialConfig::baseline(5, 32);
  EXPECT_EQ(a.canonical_arch_key(), b.canonical_arch_key());
  EXPECT_NE(a.encode(), b.encode());
}

TEST(TrialConfigTest, ValidateRejectsOutOfSpace) {
  TrialConfig c = TrialConfig::baseline(5, 8);
  c.kernel_size = 5;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = TrialConfig::baseline(5, 8);
  c.batch = 64;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = TrialConfig::baseline(5, 8);
  c.pool_choice = 2;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(TrialConfigTest, EncodeIsInjectiveOverLattice) {
  std::set<std::uint64_t> codes;
  for (const auto& c : SearchSpace::enumerate_all()) {
    EXPECT_TRUE(codes.insert(c.encode()).second);
  }
}

TEST(SearchSpaceTest, SampleStaysInSpace) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const TrialConfig c = SearchSpace::sample(rng, 7, 16);
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.channels, 7);
    EXPECT_EQ(c.batch, 16);
  }
}

}  // namespace
}  // namespace dcnas::nas
