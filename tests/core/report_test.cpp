#include "dcnas/core/report.hpp"

#include <gtest/gtest.h>

namespace dcnas::core {
namespace {

SweepResult small_sweep() {
  HwNasPipeline pipe;
  std::vector<nas::TrialConfig> configs;
  for (int batch : {8, 16}) {
    nas::TrialConfig fast = nas::TrialConfig::baseline(7, batch);
    fast.initial_output_feature = 32;
    fast.kernel_size = 3;
    fast.padding = 1;
    configs.push_back(fast);
    configs.push_back(nas::TrialConfig::baseline(5, batch));
  }
  return pipe.run_sweep(configs);
}

TEST(ReportTest, Table1ListsRegionsAndTotal) {
  const std::string t = table1_text();
  EXPECT_NE(t.find("Nebraska"), std::string::npos);
  EXPECT_NE(t.find("Illinois"), std::string::npos);
  EXPECT_NE(t.find("North Dakota"), std::string::npos);
  EXPECT_NE(t.find("California"), std::string::npos);
  EXPECT_NE(t.find("12068"), std::string::npos);
  EXPECT_NE(t.find("4776"), std::string::npos);
  EXPECT_NE(t.find("0.61m"), std::string::npos);
  EXPECT_NE(t.find("NAIP"), std::string::npos);
}

TEST(ReportTest, Table2ListsFourPredictorsWithAccuracy) {
  const std::string t = table2_text(latency::NnMeter::shared(), 40, 7);
  EXPECT_NE(t.find("cortexA76cpu"), std::string::npos);
  EXPECT_NE(t.find("adreno640gpu"), std::string::npos);
  EXPECT_NE(t.find("adreno630gpu"), std::string::npos);
  EXPECT_NE(t.find("myriadvpu"), std::string::npos);
  EXPECT_NE(t.find("Pixel4"), std::string::npos);
  EXPECT_NE(t.find("OpenVINO2019R2"), std::string::npos);
  EXPECT_NE(t.find('%'), std::string::npos);
}

TEST(ReportTest, Table3ShowsMinMaxRows) {
  const std::string t = table3_text(small_sweep());
  EXPECT_NE(t.find("Min"), std::string::npos);
  EXPECT_NE(t.find("Max"), std::string::npos);
  EXPECT_NE(t.find("ms"), std::string::npos);
  EXPECT_NE(t.find("MB"), std::string::npos);
}

TEST(ReportTest, Table4ListsFrontConfigs) {
  const SweepResult sweep = small_sweep();
  const std::string t = table4_text(sweep);
  EXPECT_NE(t.find("kernel_size_pool"), std::string::npos);
  EXPECT_NE(t.find("initial_output_feature"), std::string::npos);
  EXPECT_NE(t.find("non-dominated"), std::string::npos);
}

TEST(ReportTest, Table5HasSixRows) {
  HwNasPipeline pipe;
  const std::string t = table5_text(pipe.run_baselines());
  // 6 data rows -> "32" appears for both channel settings.
  std::size_t rows = 0;
  for (std::size_t pos = t.find('\n'); pos != std::string::npos;
       pos = t.find('\n', pos + 1)) {
    ++rows;
  }
  EXPECT_GE(rows, 10u);  // header + rules + 6 rows
  EXPECT_NE(t.find("44.7"), std::string::npos);
}

TEST(ReportTest, Fig1SummarizesBothChannelVariants) {
  const std::string t = fig1_text();
  EXPECT_NE(t.find("ch=5"), std::string::npos);
  EXPECT_NE(t.find("ch=7"), std::string::npos);
  EXPECT_NE(t.find("stage4"), std::string::npos);
  EXPECT_NE(t.find("11183810"), std::string::npos);  // 5ch param count
}

TEST(ReportTest, Fig2CountsLattice) {
  const std::string t = fig2_text();
  EXPECT_NE(t.find("288"), std::string::npos);
  EXPECT_NE(t.find("1728"), std::string::npos);
  EXPECT_NE(t.find("180"), std::string::npos);
  EXPECT_NE(t.find("{32, 48, 64}"), std::string::npos);
}

TEST(ReportTest, Fig3RendersThreeProjections) {
  const std::string t = fig3_text(small_sweep());
  EXPECT_NE(t.find("latency-accuracy"), std::string::npos);
  EXPECT_NE(t.find("memory-accuracy"), std::string::npos);
  EXPECT_NE(t.find("latency-memory"), std::string::npos);
  EXPECT_NE(t.find('#'), std::string::npos);
}

TEST(ReportTest, Fig4RadarRowsHaveNineAxes) {
  const SweepResult sweep = small_sweep();
  const auto rows = fig4_rows(sweep);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_EQ(row.axes.size(), 9u);
    for (const auto& [axis, value] : row.axes) {
      EXPECT_GE(value, 0.0) << axis;
      EXPECT_LE(value, 1.0) << axis;
    }
  }
  const std::string t = fig4_text(sweep);
  EXPECT_NE(t.find("Radar"), std::string::npos);
  EXPECT_NE(t.find("accuracy"), std::string::npos);
}

}  // namespace
}  // namespace dcnas::core
