/// Full-stack integration: synthetic data -> real training -> graph
/// export -> BN folding -> model file -> deployed inference, asserting
/// consistency at every boundary. This is the deployment path the
/// examples walk, under test.

#include <gtest/gtest.h>

#include <filesystem>

#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/graph/serialize.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"

namespace dcnas::core {
namespace {

TEST(EndToEndTest, TrainFoldSerializeDeploy) {
  // Small but real: 60-chip corpus, 3 epochs on the winner architecture.
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / 200.0;
  dopt.chip_size = 16;
  dopt.scene_size = 128;
  dopt.channels = 5;
  dopt.seed = 31;
  const auto ds = geodata::build_dataset(dopt);
  ASSERT_GE(ds.size(), 16);

  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  Rng rng(3);
  nn::ConfigurableResNet model(cfg.to_resnet_config(), rng);
  nn::TrainOptions topt;
  topt.epochs = 3;
  topt.batch_size = 8;
  topt.lr = 0.02;
  const auto fit = nn::fit(model, ds.images, ds.labels, topt);
  ASSERT_EQ(fit.epoch_loss.size(), 3u);
  // Training moved: loss is finite and changed from epoch 1.
  EXPECT_TRUE(std::isfinite(fit.epoch_loss.back()));
  EXPECT_NE(fit.epoch_loss.front(), fit.epoch_loss.back());

  // Export, fold, serialize, reload.
  model.set_training(false);
  graph::GraphExecutor exec(
      graph::build_resnet_graph(cfg.to_resnet_config(), dopt.chip_size),
      model);
  exec.fold_batchnorm();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_e2e.dcnx").string();
  const std::int64_t bytes = graph::save_model(exec, path);
  const graph::GraphExecutor deployed = graph::load_model(path);
  std::filesystem::remove(path);

  // File size is the memory objective (within the estimate tolerance).
  const double mb = static_cast<double>(bytes) / 1e6;
  EXPECT_NEAR(mb,
              graph::model_memory_mb(graph::build_resnet_graph(
                  cfg.to_resnet_config(), dopt.chip_size)),
              0.25);
  EXPECT_NEAR(mb, 11.2, 0.3);  // the Table 4 winners' 11.18 MB class

  // Deployed predictions agree with the trained model on every chip.
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(ds.size(), 8); ++i) {
    idx.push_back(i);
  }
  const Tensor probe = nn::gather_batch(ds.images, idx);
  const Tensor a = model.forward(probe);
  const Tensor b = deployed.run(probe);
  ASSERT_TRUE(a.same_shape(b));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], 5e-3) << "logit " << i;
  }
  // And the predicted classes are identical.
  for (std::int64_t s = 0; s < a.dim(0); ++s) {
    EXPECT_EQ(a.at(s, 0) > a.at(s, 1), b.at(s, 0) > b.at(s, 1));
  }
}

}  // namespace
}  // namespace dcnas::core
