#include "dcnas/core/pipeline.hpp"

#include <gtest/gtest.h>

namespace dcnas::core {
namespace {

/// Shares one full sweep across the pipeline tests (it costs a few
/// seconds; the predictors train once via NnMeter::shared()).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new HwNasPipeline();
    sweep_ = new SweepResult(pipeline_->run_full_sweep());
  }
  static void TearDownTestSuite() {
    delete sweep_;
    delete pipeline_;
    sweep_ = nullptr;
    pipeline_ = nullptr;
  }
  static HwNasPipeline* pipeline_;
  static SweepResult* sweep_;
};

HwNasPipeline* PipelineTest::pipeline_ = nullptr;
SweepResult* PipelineTest::sweep_ = nullptr;

TEST_F(PipelineTest, FullSweepCoversTheLattice) {
  EXPECT_EQ(sweep_->trials.size(), 1728u);
  EXPECT_EQ(sweep_->objectives.size(), 1728u);
  EXPECT_FALSE(sweep_->front_indices.empty());
}

TEST_F(PipelineTest, FrontIsNonDominatedAndSmall) {
  // The paper reports 5 winners; our reproduction lands the same order of
  // magnitude (well under 1% of trials) under weak dominance.
  EXPECT_GE(sweep_->front_indices.size(), 3u);
  EXPECT_LE(sweep_->front_indices.size(), 25u);
  for (std::size_t i : sweep_->front_indices) {
    for (std::size_t j = 0; j < sweep_->objectives.size(); ++j) {
      EXPECT_FALSE(pareto::dominates(sweep_->objectives[j],
                                     sweep_->objectives[i],
                                     pareto::DominanceMode::kWeak));
    }
  }
}

TEST_F(PipelineTest, WinnersShareThePaperTraits) {
  // Figure 4's observation: all non-dominated models use the smallest
  // kernel; most use the smallest width and low padding.
  int w32 = 0, p_low = 0;
  for (std::size_t i : sweep_->front_indices) {
    const auto& cfg = sweep_->trials.record(i).config;
    EXPECT_EQ(cfg.kernel_size, 3) << cfg.to_string();
    w32 += cfg.initial_output_feature == 32;
    p_low += cfg.padding <= 2;
  }
  const auto n = static_cast<int>(sweep_->front_indices.size());
  EXPECT_GE(2 * w32, n);     // at least half width-32
  EXPECT_GE(2 * p_low, n);   // at least half low padding
}

TEST_F(PipelineTest, ObjectiveRangesMatchTable3Shape) {
  double acc_min = 1e9, acc_max = -1e9, lat_min = 1e9, lat_max = -1e9,
         mem_min = 1e9, mem_max = -1e9;
  for (const auto& o : sweep_->objectives) {
    acc_min = std::min(acc_min, o.accuracy);
    acc_max = std::max(acc_max, o.accuracy);
    lat_min = std::min(lat_min, o.latency_ms);
    lat_max = std::max(lat_max, o.latency_ms);
    mem_min = std::min(mem_min, o.memory_mb);
    mem_max = std::max(mem_max, o.memory_mb);
  }
  // Paper Table 3: acc 76.19-96.13, lat 8.13-249.56, mem 11.18-44.69.
  EXPECT_NEAR(acc_min, 76.19, 4.0);
  EXPECT_NEAR(acc_max, 96.13, 1.8);
  EXPECT_NEAR(mem_min, 11.18, 0.1);
  EXPECT_NEAR(mem_max, 44.69, 0.15);
  EXPECT_NEAR(lat_min, 8.13, 4.0);
  EXPECT_GT(lat_max / lat_min, 15.0);
  EXPECT_LT(lat_max / lat_min, 60.0);
}

TEST_F(PipelineTest, BaselinesMatchTable5Shape) {
  const auto base = pipeline_->run_baselines();
  ASSERT_EQ(base.size(), 6u);
  for (const auto& r : base.records()) {
    EXPECT_EQ(r.config.initial_output_feature, 64);
    EXPECT_EQ(r.config.kernel_size, 7);
    EXPECT_NEAR(r.memory_mb, 44.7, 0.2);
    EXPECT_NEAR(r.latency_ms, 32.0, 9.0);
    EXPECT_GT(r.lat_std, 10.0);
  }
  // 7-channel rows slightly larger and slower than 5-channel rows.
  EXPECT_GT(base.record(3).memory_mb, base.record(0).memory_mb);
  EXPECT_GT(base.record(3).latency_ms, base.record(0).latency_ms);
}

TEST_F(PipelineTest, WinnersBeatBaselineEverywhereButAccuracy) {
  // §4: "all our non-dominated models surpassed the general ResNet-18":
  // lower latency (for the pooled winners), lower lat_std, less memory,
  // comparable accuracy.
  const auto base = pipeline_->run_baselines();
  double base_acc_best = 0.0;
  for (const auto& r : base.records()) {
    base_acc_best = std::max(base_acc_best, r.accuracy);
  }
  double best_winner_acc = 0.0;
  for (std::size_t i : sweep_->front_indices) {
    best_winner_acc =
        std::max(best_winner_acc, sweep_->trials.record(i).accuracy);
  }
  EXPECT_GE(best_winner_acc, base_acc_best - 0.5);
  // The fastest winner is far below the baseline's ~32 ms.
  double fastest = 1e9;
  for (std::size_t i : sweep_->front_indices) {
    fastest = std::min(fastest, sweep_->trials.record(i).latency_ms);
  }
  EXPECT_LT(fastest, 16.0);
}

TEST_F(PipelineTest, StrictAllFrontExplodesOnMemoryTies) {
  // Documented in pareto.hpp: exact memory ties make kStrictAll keep
  // far more trials than the weak relation.
  const auto strict = HwNasPipeline::front_of(
      sweep_->trials, pareto::DominanceMode::kStrictAll);
  EXPECT_GT(strict.size(), 4 * sweep_->front_indices.size());
}

TEST_F(PipelineTest, SweepIsDeterministic) {
  HwNasPipeline pipe2;
  // Re-running a small subset reproduces identical records.
  const auto all = nas::SearchSpace::enumerate_all();
  const std::vector<nas::TrialConfig> subset(all.begin(), all.begin() + 20);
  const SweepResult again = pipe2.run_sweep(subset);
  for (std::size_t i = 0; i < again.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.trials.record(i).accuracy,
                     sweep_->trials.record(i).accuracy);
    EXPECT_DOUBLE_EQ(again.trials.record(i).latency_ms,
                     sweep_->trials.record(i).latency_ms);
  }
}

}  // namespace
}  // namespace dcnas::core
