/// End-to-end reproduction gates: ties the shipped defaults to the paper's
/// headline numbers (the machine-checkable subset of EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "dcnas/core/pipeline.hpp"
#include "dcnas/core/report.hpp"

namespace dcnas::core {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new HwNasPipeline();
    sweep_ = new SweepResult(pipeline_->run_full_sweep());
    baselines_ = new nas::TrialDatabase(pipeline_->run_baselines());
  }
  static void TearDownTestSuite() {
    delete baselines_;
    delete sweep_;
    delete pipeline_;
    baselines_ = nullptr;
    sweep_ = nullptr;
    pipeline_ = nullptr;
  }
  static HwNasPipeline* pipeline_;
  static SweepResult* sweep_;
  static nas::TrialDatabase* baselines_;
};

HwNasPipeline* ReproductionTest::pipeline_ = nullptr;
SweepResult* ReproductionTest::sweep_ = nullptr;
nas::TrialDatabase* ReproductionTest::baselines_ = nullptr;

TEST_F(ReproductionTest, Table4BestModelMatchesPaperConfiguration) {
  // Paper's top row: 7 channels, batch 16, k3/s2/p1, pooled, width 32,
  // 96.13% — the best-accuracy trial must share the architecture family
  // (kernel 3, width 32, 7 channels) and land near that accuracy.
  const auto& best = sweep_->trials.best_accuracy();
  EXPECT_EQ(best.config.channels, 7);
  EXPECT_EQ(best.config.kernel_size, 3);
  EXPECT_EQ(best.config.initial_output_feature, 32);
  EXPECT_EQ(best.config.batch, 16);
  EXPECT_NEAR(best.accuracy, 96.13, 1.8);
}

TEST_F(ReproductionTest, Table4WinnersBeatBaselineOnEfficiency) {
  // §4: winners have lower latency, more consistent latency (lower
  // lat_std), and less memory than stock ResNet-18, at comparable accuracy.
  double base_lat = 0.0, base_std = 0.0, base_mem = 0.0;
  for (const auto& r : baselines_->records()) {
    base_lat = std::max(base_lat, r.latency_ms);
    base_std = std::max(base_std, r.lat_std);
    base_mem = std::max(base_mem, r.memory_mb);
  }
  int cheaper_mem = 0;
  for (std::size_t i : sweep_->front_indices) {
    const auto& r = sweep_->trials.record(i);
    EXPECT_LE(r.latency_ms, base_lat * 1.05) << r.config.to_string();
    cheaper_mem += r.memory_mb < 0.5 * base_mem;
  }
  // Most winners use ~1/4 of the baseline's memory (11.2 vs 44.7 MB).
  EXPECT_GE(2 * cheaper_mem,
            static_cast<int>(sweep_->front_indices.size()));
}

TEST_F(ReproductionTest, ParetoSpeedupMatchesTable4VsTable5) {
  // Paper: best pooled winner 8.19 ms vs baseline 32.46 ms -> ~4x.
  double fastest = 1e9;
  for (std::size_t i : sweep_->front_indices) {
    fastest = std::min(fastest, sweep_->trials.record(i).latency_ms);
  }
  double base7 = 0.0;
  for (const auto& r : baselines_->records()) {
    if (r.config.channels == 7) base7 = r.latency_ms;
  }
  const double speedup = base7 / fastest;
  EXPECT_GT(speedup, 2.3);
  EXPECT_LT(speedup, 6.0);
}

TEST_F(ReproductionTest, Table5AccuracyOrderingMatchesPaper) {
  // Paper Table 5 ordering: within each channel count, batch 16 > batch 8
  // > batch 32 for 5ch; and 7ch rows beat their 5ch counterparts.
  auto find = [&](int ch, int b) -> const nas::TrialRecord& {
    for (const auto& r : baselines_->records()) {
      if (r.config.channels == ch && r.config.batch == b) return r;
    }
    throw InternalError("baseline row missing");
  };
  EXPECT_GT(find(5, 16).accuracy, find(5, 32).accuracy);
  EXPECT_GT(find(7, 16).accuracy, find(7, 32).accuracy);
  for (int b : {8, 16, 32}) {
    EXPECT_GT(find(7, b).accuracy, find(5, b).accuracy) << "batch " << b;
  }
  // Latency identical across batch (nn-Meter predicts batch-1 inference).
  EXPECT_DOUBLE_EQ(find(5, 8).latency_ms, find(5, 32).latency_ms);
  EXPECT_DOUBLE_EQ(find(7, 8).latency_ms, find(7, 16).latency_ms);
}

TEST_F(ReproductionTest, AccuracyStaysOnParWithReferenceStudy) {
  // §4: despite halving epochs, accuracy stays on par with Wu et al.'s
  // 95.92-97.43% — our best sweep accuracy must reach that band.
  EXPECT_GE(sweep_->trials.best_accuracy().accuracy, 95.0);
}

TEST_F(ReproductionTest, FullReportGenerationSucceeds) {
  EXPECT_FALSE(table1_text().empty());
  EXPECT_FALSE(table3_text(*sweep_).empty());
  EXPECT_FALSE(table4_text(*sweep_).empty());
  EXPECT_FALSE(table5_text(*baselines_).empty());
  EXPECT_FALSE(fig1_text().empty());
  EXPECT_FALSE(fig2_text().empty());
  EXPECT_FALSE(fig3_text(*sweep_).empty());
  EXPECT_FALSE(fig4_text(*sweep_).empty());
}

TEST_F(ReproductionTest, SearchSpacePruningInsightHolds) {
  // §5 observation 2: restricting padding to 1 shrinks the space by 3x
  // while keeping the Pareto front quality — verify the best padding-1
  // trial is within noise of the global best.
  double best_all = 0.0, best_p1 = 0.0;
  for (const auto& r : sweep_->trials.records()) {
    best_all = std::max(best_all, r.accuracy);
    if (r.config.padding == 1) best_p1 = std::max(best_p1, r.accuracy);
  }
  EXPECT_GE(best_p1, best_all - 1.0);
}

}  // namespace
}  // namespace dcnas::core
