#include "dcnas/analysis/verifier.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dcnas/analysis/inference.hpp"
#include "dcnas/analysis/passes.hpp"
#include "dcnas/graph/builder.hpp"

namespace dcnas::analysis {
namespace {

using graph::ActShape;
using graph::GraphNode;
using graph::ModelGraph;
using graph::OpKind;

/// The stock ResNet-18 graph (5-channel baseline at deployment size) — the
/// donor for every seeded corruption below.
ModelGraph resnet18() {
  return graph::build_resnet_graph(nn::ResNetConfig::baseline(5));
}

VerifyResult verify(const ModelGraph& g) {
  return GraphVerifier::standard().verify(g);
}

int find_node(const ModelGraph& g, OpKind kind, int skip = 0) {
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.nodes()[i].kind == kind && skip-- == 0) return static_cast<int>(i);
  }
  ADD_FAILURE() << "graph has no " << op_kind_name(kind) << " node";
  return -1;
}

/// Applies \p mutate to a copy of the ResNet-18 node list and verifies the
/// resulting graph, asserting \p rule fires among the diagnostics.
VerifyResult corrupt_and_expect(const char* rule,
                                void (*mutate)(std::vector<GraphNode>&)) {
  std::vector<GraphNode> nodes = resnet18().nodes();
  mutate(nodes);
  const VerifyResult r = verify(ModelGraph::from_nodes(std::move(nodes)));
  EXPECT_FALSE(r.diagnostics.empty()) << "corruption went undetected";
  EXPECT_TRUE(r.has_rule(rule))
      << "expected rule " << rule << " among:\n" << r.to_string();
  return r;
}

int relu_index(const std::vector<GraphNode>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == OpKind::kRelu) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Clean baselines: the verifier's second-implementation arithmetic must agree
// with the builder's on every valid graph, with zero diagnostics (warnings
// included — a warning on a stock graph would be noise at trust boundaries).

TEST(VerifierTest, StockResNet18IsClean) {
  const VerifyResult r = verify(resnet18());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.diagnostics.size(), 0u) << r.to_string();
}

TEST(VerifierTest, SevenChannelAndNoPoolVariantsAreClean) {
  for (int channels : {5, 7}) {
    nn::ResNetConfig cfg = nn::ResNetConfig::baseline(channels);
    EXPECT_EQ(verify(graph::build_resnet_graph(cfg)).diagnostics.size(), 0u);
    cfg.with_pool = false;
    cfg.init_width = 32;
    EXPECT_EQ(verify(graph::build_resnet_graph(cfg)).diagnostics.size(), 0u);
  }
}

TEST(VerifierTest, SmallInputSizeIsClean) {
  const ModelGraph g =
      graph::build_resnet_graph(nn::ResNetConfig::baseline(5), 24);
  EXPECT_EQ(verify(g).diagnostics.size(), 0u);
}

// ---------------------------------------------------------------------------
// Corruption harness: each seeded corruption class must fire its rule id.

TEST(CorruptionTest, FalsifiedOutShapeAnnotation) {
  corrupt_and_expect(rules::kOutShape, [](std::vector<GraphNode>& nodes) {
    nodes[static_cast<std::size_t>(relu_index(nodes))].out_shape.h += 3;
  });
}

TEST(CorruptionTest, FalsifiedInShapeAnnotation) {
  corrupt_and_expect(rules::kInShape, [](std::vector<GraphNode>& nodes) {
    nodes[static_cast<std::size_t>(relu_index(nodes))].in_shape.c += 1;
  });
}

TEST(CorruptionTest, WrongFlopsAnnotation) {
  corrupt_and_expect(rules::kFlops, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kConv) {
        n.flops /= 2;  // claims MACs instead of FLOPs
        return;
      }
    }
  });
}

TEST(CorruptionTest, WrongParamsAnnotation) {
  corrupt_and_expect(rules::kParams, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kLinear) {
        n.params -= n.out_shape.c;  // "forgets" the bias
        return;
      }
    }
  });
}

TEST(CorruptionTest, DanglingInputIndex) {
  corrupt_and_expect(rules::kDanglingInput, [](std::vector<GraphNode>& nodes) {
    nodes.back().inputs[0] = static_cast<int>(nodes.size()) + 7;
  });
}

TEST(CorruptionTest, ForwardReferenceViolatesTopologicalOrder) {
  corrupt_and_expect(rules::kDanglingInput, [](std::vector<GraphNode>& nodes) {
    const int i = relu_index(nodes);
    nodes[static_cast<std::size_t>(i)].inputs[0] = i;  // self-loop
  });
}

TEST(CorruptionTest, OrphanNode) {
  corrupt_and_expect(rules::kOrphan, [](std::vector<GraphNode>& nodes) {
    GraphNode orphan;
    orphan.kind = OpKind::kRelu;
    orphan.name = "dead_relu";
    orphan.inputs = {0};
    orphan.in_shape = nodes[0].out_shape;
    orphan.out_shape = nodes[0].out_shape;
    orphan.flops = orphan.out_shape.numel();
    // Keep the Output node last so only the orphan rule fires.
    nodes.insert(nodes.end() - 1, std::move(orphan));
  });
}

TEST(CorruptionTest, ShapeMismatchedAdd) {
  corrupt_and_expect(rules::kAddShape, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kAdd) {
        // Rewire the residual operand to the graph input, whose shape
        // cannot match a stage-interior activation.
        n.inputs[1] = 0;
        return;
      }
    }
  });
}

TEST(CorruptionTest, BatchNormWithoutConvProducer) {
  // Warning-severity: the graph still executes, but fold_batchnorm() can
  // never fuse this BN, which the fusion pass assumes rather than checks.
  std::vector<GraphNode> nodes = resnet18().nodes();
  for (GraphNode& n : nodes) {
    if (n.kind == OpKind::kBatchNorm) {
      const GraphNode& conv = nodes[static_cast<std::size_t>(n.inputs[0])];
      if (conv.inputs.empty()) continue;
      const int grandparent = conv.inputs[0];
      if (nodes[static_cast<std::size_t>(grandparent)].out_shape !=
          n.out_shape) {
        continue;  // keep shapes legal so only the fusion smell fires
      }
      n.inputs[0] = grandparent;
      n.in_shape = nodes[static_cast<std::size_t>(grandparent)].out_shape;
      break;
    }
  }
  const VerifyResult r = verify(ModelGraph::from_nodes(std::move(nodes)));
  EXPECT_TRUE(r.has_rule(rules::kBnProducer)) << r.to_string();
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == rules::kBnProducer) {
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
  }
}

TEST(CorruptionTest, AbsurdStride) {
  corrupt_and_expect(rules::kGeometry, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kConv) {
        n.attrs.stride = 0;
        return;
      }
    }
  });
}

TEST(CorruptionTest, AbsurdPadding) {
  corrupt_and_expect(rules::kGeometry, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kConv) {
        n.attrs.padding = n.attrs.kernel + 5;
        return;
      }
    }
  });
}

TEST(CorruptionTest, KernelLargerThanPaddedInput) {
  corrupt_and_expect(rules::kGeometry, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kMaxPool) {
        n.attrs.kernel = 4096;  // no window fits a 224-px activation
        return;
      }
    }
  });
}

TEST(CorruptionTest, WrongArity) {
  corrupt_and_expect(rules::kArity, [](std::vector<GraphNode>& nodes) {
    for (GraphNode& n : nodes) {
      if (n.kind == OpKind::kAdd) {
        n.inputs.pop_back();
        return;
      }
    }
  });
}

TEST(CorruptionTest, MissingOutputNode) {
  corrupt_and_expect(rules::kSingleOutput, [](std::vector<GraphNode>& nodes) {
    nodes.back().kind = OpKind::kRelu;
  });
}

TEST(CorruptionTest, ExtraInputNode) {
  corrupt_and_expect(rules::kInputFirst, [](std::vector<GraphNode>& nodes) {
    const int i = relu_index(nodes);
    GraphNode& n = nodes[static_cast<std::size_t>(i)];
    n.kind = OpKind::kInput;
    n.inputs.clear();
    n.out_shape = n.in_shape;  // keep downstream shapes legal
  });
}

TEST(CorruptionTest, InflatedActivationPeakDiverges) {
  const VerifyResult r = corrupt_and_expect(
      rules::kActivationBytes, [](std::vector<GraphNode>& nodes) {
        // An inflated stored shape raises max_activation_bytes() above what
        // independently re-inferred shapes can reach.
        GraphNode& n = nodes[static_cast<std::size_t>(relu_index(nodes))];
        n.out_shape = {512, 224, 224};
      });
  EXPECT_TRUE(r.has_rule(rules::kOutShape));  // defense in depth: both fire
}

TEST(CorruptionTest, EmptyGraph) {
  const VerifyResult r = verify(ModelGraph::from_nodes({}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has_rule(rules::kInputFirst));
}

// ---------------------------------------------------------------------------
// Framework mechanics.

TEST(VerifierFrameworkTest, StandardPipelineRunsAllSixPasses) {
  const GraphVerifier v = GraphVerifier::standard();
  EXPECT_EQ(v.pass_count(), 6u);
  const std::vector<std::string> names = v.pass_names();
  EXPECT_EQ(names.front(), "topology");
  EXPECT_EQ(names.back(), "resource");
}

TEST(VerifierFrameworkTest, CustomPassExtendsThePipeline) {
  class NamePolicyPass : public VerifyPass {
   public:
    std::string name() const override { return "name-policy"; }
    void run(const ModelGraph& g,
             std::vector<Diagnostic>& out) const override {
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (g.nodes()[i].name.empty()) {
          Diagnostic d;
          d.rule = "style.unnamed";
          d.severity = Severity::kWarning;
          d.node = static_cast<int>(i);
          d.message = "node has no name";
          out.push_back(std::move(d));
        }
      }
    }
  };
  GraphVerifier v;
  v.add_pass(std::make_unique<NamePolicyPass>());
  ModelGraph g;
  g.add_input({5, 8, 8}, "");
  g.add_output(g.add_relu(0, "relu"), "out");
  const VerifyResult r = v.verify(g);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_TRUE(r.has_rule("style.unnamed"));
  EXPECT_TRUE(r.ok()) << "warnings alone must not fail verification";
}

TEST(VerifierFrameworkTest, DiagnosticToStringNamesTheNode) {
  Diagnostic d;
  d.rule = rules::kOutShape;
  d.severity = Severity::kError;
  d.node = 4;
  d.node_name = "conv1";
  d.message = "stored out_shape (1,1,1)";
  EXPECT_EQ(d.to_string(),
            "error[sem.out-shape] node 4 'conv1': stored out_shape (1,1,1)");
}

TEST(VerifierFrameworkTest, VerifyOrThrowListsEveryDiagnostic) {
  std::vector<GraphNode> nodes = resnet18().nodes();
  nodes[static_cast<std::size_t>(relu_index(nodes))].out_shape.h += 1;
  try {
    verify_or_throw(ModelGraph::from_nodes(std::move(nodes)), "unit test");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit test"), std::string::npos);
    EXPECT_NE(what.find(rules::kOutShape), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Inference arithmetic spot checks (the independent re-derivation).

TEST(InferenceTest, WindowOutSizeMatchesConvFormula) {
  EXPECT_EQ(window_out_size(224, 7, 2, 3).value_or(-1), 112);
  EXPECT_EQ(window_out_size(56, 3, 1, 1).value_or(-1), 56);
  EXPECT_EQ(window_out_size(8, 3, 2, 1).value_or(-1), 4);
  EXPECT_FALSE(window_out_size(8, 0, 1, 0).has_value());
  EXPECT_FALSE(window_out_size(8, 3, 0, 1).has_value());
  EXPECT_FALSE(window_out_size(4, 9, 1, 0).has_value());
}

TEST(InferenceTest, ConvExpectationMatchesBuilderAnnotations) {
  const ModelGraph g = resnet18();
  for (std::size_t i = 1; i < g.size(); ++i) {
    const GraphNode& n = g.nodes()[i];
    std::vector<ActShape> producers;
    for (int in : n.inputs) {
      producers.push_back(g.nodes()[static_cast<std::size_t>(in)].out_shape);
    }
    const auto e = infer_node(n, producers);
    ASSERT_TRUE(e.has_value()) << "node " << i << " '" << n.name << "'";
    EXPECT_EQ(e->out_shape, n.out_shape) << n.name;
    EXPECT_EQ(e->params, n.params) << n.name;
    EXPECT_EQ(e->flops, n.flops) << n.name;
  }
}

}  // namespace
}  // namespace dcnas::analysis
