#include <gtest/gtest.h>

#include "dcnas/analysis/verifier.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/nas/search_space.hpp"

namespace dcnas::analysis {
namespace {

/// Every lattice point the NAS can sample must verify with zero diagnostics
/// (warnings included). This sweep is also the consistency proof for the
/// verifier's deliberately independent shape/params/FLOPs arithmetic: if
/// inference.cpp and ir.cpp ever disagree on a valid graph, exactly one
/// architecture here starts failing.
TEST(SearchSpaceSweepTest, AllLatticePointsVerifyClean) {
  const GraphVerifier verifier = GraphVerifier::standard();
  const auto all = nas::SearchSpace::enumerate_all();
  ASSERT_EQ(static_cast<std::int64_t>(all.size()),
            nas::SearchSpace::lattice_size());
  for (const nas::TrialConfig& config : all) {
    const graph::ModelGraph g =
        graph::build_resnet_graph(config.to_resnet_config());
    const VerifyResult r = verifier.verify(g);
    ASSERT_EQ(r.diagnostics.size(), 0u)
        << config.lattice_key() << ":\n" << r.to_string();
  }
}

/// The Table 5 baselines (stock ResNet-18 per input combination) are part of
/// the paper's reported results and must verify clean too.
TEST(SearchSpaceSweepTest, BaselinesVerifyClean) {
  const GraphVerifier verifier = GraphVerifier::standard();
  for (int channels : {5, 7}) {
    for (int batch : {8, 16, 32}) {
      const nas::TrialConfig config = nas::TrialConfig::baseline(channels,
                                                                 batch);
      const graph::ModelGraph g =
          graph::build_resnet_graph(config.to_resnet_config());
      const VerifyResult r = verifier.verify(g);
      EXPECT_EQ(r.diagnostics.size(), 0u)
          << config.lattice_key() << ":\n" << r.to_string();
    }
  }
}

}  // namespace
}  // namespace dcnas::analysis
