#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "dcnas/analysis/verifier.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/executor.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/evaluator.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/serve/registry.hpp"

namespace dcnas::analysis {
namespace {

using graph::GraphExecutor;
using graph::ModelGraph;
using graph::OpKind;

GraphExecutor make_trained_executor(std::int64_t hw = 24) {
  nn::ResNetConfig config = nn::ResNetConfig::baseline(5);
  config.init_width = 32;
  config.conv1_kernel = 3;
  config.conv1_padding = 1;
  Rng rng(7);
  nn::ConfigurableResNet model(config, rng);
  for (int i = 0; i < 2; ++i) {
    model.forward(Tensor::rand_uniform({2, 5, hw, hw}, rng, -1.0f, 1.0f));
  }
  model.set_training(false);
  return GraphExecutor(graph::build_resnet_graph(config, hw), model);
}

std::int32_t read_i32(const std::vector<unsigned char>& bytes,
                      std::size_t at) {
  std::int32_t v;
  std::memcpy(&v, bytes.data() + at, sizeof v);
  return v;
}

void write_i32(std::vector<unsigned char>& bytes, std::size_t at,
               std::int32_t v) {
  std::memcpy(bytes.data() + at, &v, sizeof v);
}

/// Walks the DCNX record layout and returns the byte offset of the first
/// ReLU node's out_shape triple. ReLU carries no weight tensors, so patching
/// its shape annotation keeps the file structurally parseable — the
/// corruption is only catchable semantically.
std::size_t first_relu_out_shape_offset(
    const std::vector<unsigned char>& bytes) {
  constexpr std::uint8_t kHasConv = 1u << 0;
  constexpr std::uint8_t kHasBias = 1u << 1;
  constexpr std::uint8_t kHasBn = 1u << 2;
  constexpr std::uint8_t kHasLinear = 1u << 3;
  std::size_t pos = 8;  // magic + version
  std::uint32_t count;
  std::memcpy(&count, bytes.data() + pos, 4);
  pos += 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t kind = bytes[pos++];
    const std::uint8_t flags = bytes[pos++];
    std::uint16_t name_len;
    std::memcpy(&name_len, bytes.data() + pos, 2);
    pos += 2 + name_len;
    pos += 3 * 4;  // attrs
    pos += 3 * 4;  // in_shape
    const std::size_t out_shape_at = pos;
    pos += 3 * 4;  // out_shape
    const std::uint8_t num_inputs = bytes[pos++];
    pos += static_cast<std::size_t>(num_inputs) * 4;
    if (kind == static_cast<std::uint8_t>(OpKind::kRelu)) {
      return out_shape_at;
    }
    std::size_t tensors = 0;
    if (flags & kHasConv) tensors += 1;
    if (flags & kHasBias) tensors += 1;
    if (flags & kHasBn) tensors += 4;
    if (flags & kHasLinear) tensors += 2;
    for (std::size_t t = 0; t < tensors; ++t) {
      std::uint32_t numel;
      std::memcpy(&numel, bytes.data() + pos, 4);
      pos += 4 + static_cast<std::size_t>(numel) * 4;
    }
  }
  ADD_FAILURE() << "model file has no ReLU record";
  return 0;
}

/// A serialized model with one falsified shape annotation: byte-patched, not
/// rebuilt, so every structural invariant the parser checks still holds.
std::vector<unsigned char> byte_patched_model() {
  std::vector<unsigned char> bytes =
      graph::serialize_model(make_trained_executor());
  const std::size_t at = first_relu_out_shape_offset(bytes);
  const std::int32_t h = read_i32(bytes, at + 4);
  write_i32(bytes, at + 4, h + 1);  // out_shape.h off by one
  return bytes;
}

// ---------------------------------------------------------------------------
// Boundary 1: parse_model (verify-on-load).

TEST(TrustBoundaryTest, ParseModelAcceptsHonestFile) {
  const auto bytes = graph::serialize_model(make_trained_executor());
  EXPECT_NO_THROW(graph::parse_model(bytes));
}

TEST(TrustBoundaryTest, ParseModelRejectsBytePatchedShape) {
  try {
    graph::parse_model(byte_patched_model());
    FAIL() << "falsified shape annotation must be rejected";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("parse_model"), std::string::npos);
  }
}

TEST(TrustBoundaryTest, ParseModelGraphExposesTheCorruptionToLint) {
  // dcnas_lint's path: parse without verifying, then report everything.
  const ModelGraph g = graph::parse_model_graph(byte_patched_model());
  const VerifyResult r = GraphVerifier::standard().verify(g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has_rule(rules::kOutShape) || r.has_rule(rules::kInShape))
      << r.to_string();
}

// ---------------------------------------------------------------------------
// Boundary 2: serve::ModelRegistry (refuse to register).

TEST(TrustBoundaryTest, RegistryRefusesBytePatchedFile) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "dcnas_corrupt.dcnx";
  {
    const auto bytes = byte_patched_model();
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  serve::ModelRegistry registry(4);
  EXPECT_THROW(registry.load("bad", path.string()), InvalidArgument);
  EXPECT_FALSE(registry.contains("bad"));
  EXPECT_EQ(registry.size(), 0u);
  std::remove(path.string().c_str());
}

TEST(TrustBoundaryTest, RegistryKeepsResidentVersionWhenSwapIsRefused) {
  serve::ModelRegistry registry(4);
  const int v1 = registry.register_model("m", make_trained_executor());
  EXPECT_EQ(v1, 1);
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "dcnas_corrupt2.dcnx";
  {
    const auto bytes = byte_patched_model();
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(registry.load("m", path.string()), InvalidArgument);
  EXPECT_TRUE(registry.contains("m"));
  EXPECT_EQ(registry.version("m"), v1) << "refused swap must not bump";
  std::remove(path.string().c_str());
}

TEST(TrustBoundaryTest, RegistryAcceptsVerifiedExecutor) {
  serve::ModelRegistry registry(4);
  EXPECT_EQ(registry.register_model("good", make_trained_executor()), 1);
  EXPECT_TRUE(registry.contains("good"));
}

// ---------------------------------------------------------------------------
// Boundary 3: the NAS evaluator (verify each candidate before spending
// training or latency-prediction budget on it).

TEST(TrustBoundaryTest, EveryEvaluatorCandidateGateAcceptsValidConfigs) {
  nas::TrialConfig config;  // defaults are the Table 4 anchor point
  EXPECT_NO_THROW(nas::verify_candidate(config));
}

TEST(TrustBoundaryTest, EvaluatorRejectsOutOfSpaceCandidate) {
  nas::TrialConfig config;
  config.padding = 9;  // outside {1, 2, 3}
  EXPECT_THROW(nas::verify_candidate(config), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::analysis
