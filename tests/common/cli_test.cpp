#include "dcnas/common/cli.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/error.hpp"

namespace dcnas {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, ParsesKeyEqualsValue) {
  const auto args = make_args({"prog", "--mode=fast", "--trials=17"});
  EXPECT_EQ(args.get("mode", ""), "fast");
  EXPECT_EQ(args.get_int("trials", 0), 17);
}

TEST(CliTest, ParsesKeySpaceValue) {
  const auto args = make_args({"prog", "--out", "file.csv"});
  EXPECT_EQ(args.get("out", ""), "file.csv");
  EXPECT_TRUE(args.positional().empty());
}

TEST(CliTest, ParsesBareFlag) {
  const auto args = make_args({"prog", "--verbose", "--level=2"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
  EXPECT_TRUE(args.get_flag("quiet", true));
}

TEST(CliTest, DefaultsWhenAbsent) {
  const auto args = make_args({"prog"});
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", -7), -7);
  EXPECT_DOUBLE_EQ(args.get_double("f", 2.5), 2.5);
  EXPECT_FALSE(args.has("x"));
}

TEST(CliTest, PositionalArgsPreserved) {
  const auto args = make_args({"prog", "input.txt", "--k=v", "other"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "other");
}

TEST(CliTest, BenchmarkOptionsPassThrough) {
  const auto args = make_args({"prog", "--benchmark_filter=Conv"});
  EXPECT_FALSE(args.has("benchmark_filter"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "--benchmark_filter=Conv");
}

TEST(CliTest, NumericParseErrorsThrow) {
  const auto args = make_args({"prog", "--n=abc", "--f=xyz", "--b=maybe"});
  EXPECT_THROW(args.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(args.get_double("f", 0.0), InvalidArgument);
  EXPECT_THROW(args.get_flag("b"), InvalidArgument);
}

TEST(CliTest, BooleanSpellings) {
  const auto args =
      make_args({"prog", "--a=yes", "--b=off", "--c=1", "--d=false"});
  EXPECT_TRUE(args.get_flag("a"));
  EXPECT_FALSE(args.get_flag("b"));
  EXPECT_TRUE(args.get_flag("c"));
  EXPECT_FALSE(args.get_flag("d"));
}

}  // namespace
}  // namespace dcnas
