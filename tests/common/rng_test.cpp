#include "dcnas/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace dcnas {
namespace {

TEST(SplitMix64Test, IsDeterministicAndScrambles) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(HashUnitTest, StaysInUnitInterval) {
  for (std::uint64_t k = 0; k < 10000; ++k) {
    const double u = hash_unit(k);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(HashUnitTest, IsApproximatelyUniform) {
  double sum = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) sum += hash_unit(static_cast<std::uint64_t>(k));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(7);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
  // Forking is deterministic w.r.t. the parent state.
  Rng parent2(7);
  Rng c0b = parent2.fork(0);
  Rng c0c = Rng(7).fork(0);
  EXPECT_EQ(c0b.next_u64(), c0c.next_u64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(77);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) counts[rng.categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, CategoricalRejectsDegenerateWeights) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_THROW(rng.categorical(empty), InvalidArgument);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), InvalidArgument);
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), InvalidArgument);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace dcnas
