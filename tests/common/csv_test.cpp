#include "dcnas/common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dcnas/common/error.hpp"

namespace dcnas {
namespace {

TEST(CsvTest, RoundTripsSimpleTable) {
  CsvTable t({"a", "b", "c"});
  t.add_row({"1", "2.5", "x"});
  t.add_row({"-3", "0", "y"});
  const CsvTable back = CsvTable::parse(t.to_string());
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.at(0, "a"), "1");
  EXPECT_DOUBLE_EQ(back.at_double(0, "b"), 2.5);
  EXPECT_EQ(back.at_int(1, "a"), -3);
  EXPECT_EQ(back.at(1, "c"), "y");
}

TEST(CsvTest, QuotesFieldsWithCommasAndQuotes) {
  CsvTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\"\nbye"});
  const std::string text = t.to_string();
  const CsvTable back = CsvTable::parse(text);
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.at(0, "name"), "a,b");
  EXPECT_EQ(back.at(0, "note"), "say \"hi\"\nbye");
}

TEST(CsvTest, RejectsRowWidthMismatch) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(CsvTest, RejectsDuplicateColumns) {
  EXPECT_THROW(CsvTable({"a", "a"}), InvalidArgument);
}

TEST(CsvTest, RejectsUnknownColumn) {
  CsvTable t({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.at(0, "zzz"), InvalidArgument);
  EXPECT_FALSE(t.has_column("zzz"));
  EXPECT_TRUE(t.has_column("a"));
}

TEST(CsvTest, RejectsNonNumericConversion) {
  CsvTable t({"a"});
  t.add_row({"hello"});
  EXPECT_THROW(t.at_double(0, "a"), InvalidArgument);
  EXPECT_THROW(t.at_int(0, "a"), InvalidArgument);
}

TEST(CsvTest, ParsesCrlfAndSkipsBlankLines) {
  const CsvTable t = CsvTable::parse("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(1, "b"), "4");
}

TEST(CsvTest, SaveAndLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_csv_test.csv").string();
  CsvTable t({"x"});
  t.add_row({"42"});
  t.save(path);
  const CsvTable back = CsvTable::load(path);
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.at_int(0, "x"), 42);
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileThrows) {
  EXPECT_THROW(CsvTable::load("/nonexistent/dir/file.csv"), InvalidArgument);
}

TEST(CsvTest, RowIndexOutOfRangeThrows) {
  CsvTable t({"a"});
  EXPECT_THROW(t.row(0), InvalidArgument);
}

}  // namespace
}  // namespace dcnas
