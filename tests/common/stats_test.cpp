#include "dcnas/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dcnas/common/error.hpp"

namespace dcnas {
namespace {

TEST(StatsTest, MeanBasics) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, SampleStddevMatchesPaperLatStdConvention) {
  // Table 5's lat_std over four predictors uses the n-1 denominator: check
  // against a hand-computed example shaped like the per-device latencies.
  std::vector<double> lat = {25.0, 18.0, 22.0, 63.0};
  const double m = mean(lat);
  EXPECT_NEAR(m, 32.0, 1e-12);
  EXPECT_NEAR(sample_stddev(lat), std::sqrt((49.0 + 196.0 + 100.0 + 961.0) / 3.0),
              1e-12);
}

TEST(StatsTest, StddevDegenerateCases) {
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(population_stddev(std::vector<double>{}), 0.0);
  std::vector<double> same = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(sample_stddev(same), 0.0);
}

TEST(StatsTest, PopulationVsSampleStddev) {
  std::vector<double> xs = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(population_stddev(xs), 1.0);
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, SummarizeReportsAllFields) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(StatsTest, QuantileRejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile({1.0}, -0.1), InvalidArgument);
  EXPECT_THROW(quantile({1.0}, 1.1), InvalidArgument);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  std::vector<double> ys = {2.0, 4.0, 6.0};
  std::vector<double> zs = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceIsZero) {
  std::vector<double> xs = {1.0, 1.0, 1.0};
  std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(StatsTest, SpearmanIsRankBased) {
  // Monotone but nonlinear relation: spearman = 1, pearson < 1.
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys = {1.0, 8.0, 27.0, 64.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(StatsTest, SpearmanHandlesTies) {
  std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  std::vector<double> ys = {1.0, 2.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, WithinRelativeToleranceCountsHits) {
  std::vector<double> truth = {100.0, 100.0, 100.0, 100.0};
  std::vector<double> pred = {105.0, 109.9, 111.0, 89.0};
  // 105 and 109.9 are within 10%; 111 and 89 are not.
  EXPECT_DOUBLE_EQ(within_relative_tolerance(truth, pred, 0.10), 0.5);
}

TEST(StatsTest, WithinRelativeToleranceRejectsBadArgs) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(within_relative_tolerance(a, b, 0.1), InvalidArgument);
  EXPECT_THROW(within_relative_tolerance(a, a, 0.0), InvalidArgument);
}

TEST(StatsTest, RmspeMatchesHandComputation) {
  std::vector<double> truth = {100.0, 200.0};
  std::vector<double> pred = {110.0, 180.0};
  EXPECT_NEAR(rmspe(truth, pred), 0.1, 1e-12);
}

}  // namespace
}  // namespace dcnas
