#include "dcnas/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "dcnas/common/error.hpp"

namespace dcnas {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SizeReflectsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), InvalidArgument);
}

TEST(ParallelForTest, CoversExactRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::int64_t) { count.fetch_add(1); });
  parallel_for(5, 3, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelForTest, SingleElementRange) {
  std::atomic<int> seen{-1};
  parallel_for(41, 42, [&](std::int64_t i) { seen.store(static_cast<int>(i)); });
  EXPECT_EQ(seen.load(), 41);
}

TEST(ParallelForChunkedTest, ChunksPartitionTheRange) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_chunked(0, 257, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_LT(lo, hi);
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ComputesCorrectSum) {
  // Sum via per-iteration atomics as a correctness (not performance) check.
  std::atomic<long long> total{0};
  parallel_for(1, 1001, [&](std::int64_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 500500);
}

TEST(ParallelForTest, NestedInvocationCompletes) {
  // parallel_for inside a pool task must not deadlock: the inner call runs
  // inline when no spare workers exist.
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::int64_t) {
    parallel_for(0, 4, [&](std::int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace dcnas
