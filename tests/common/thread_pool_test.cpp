#include "dcnas/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "dcnas/common/error.hpp"

namespace dcnas {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SizeReflectsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), InvalidArgument);
}

TEST(ThreadPoolTest, FutureSubmitDeliversValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, FutureSubmitDeliversVoidAndMoveOnlyCallables) {
  ThreadPool pool(1);
  auto flag = std::make_unique<std::atomic<bool>>(false);
  std::atomic<bool>* seen = flag.get();
  std::future<void> f =
      pool.submit([owned = std::move(flag)] { owned->store(true); });
  f.get();
  EXPECT_TRUE(seen->load());
}

TEST(ThreadPoolTest, FutureSubmitPropagatesException) {
  ThreadPool pool(2);
  std::future<int> f = pool.submit(
      []() -> int { throw InvalidArgument("boom from task"); });
  EXPECT_THROW(f.get(), InvalidArgument);
  // The exception went through the future, not the fire-and-forget slot.
  pool.wait_idle();
  EXPECT_FALSE(pool.pending_error());
}

TEST(ThreadPoolTest, WaitIdleRethrowsFireAndForgetException) {
  ThreadPool pool(2);
  pool.submit(std::function<void()>(
      [] { throw InvalidArgument("leaked from fire-and-forget"); }));
  EXPECT_THROW(pool.wait_idle(), InvalidArgument);
}

TEST(ThreadPoolTest, PoolStaysUsableAfterFireAndForgetThrow) {
  ThreadPool pool(2);
  pool.submit(std::function<void()>([] { throw InvalidArgument("first"); }));
  EXPECT_THROW(pool.wait_idle(), InvalidArgument);
  // The error slot is cleared and the workers survived.
  EXPECT_FALSE(pool.pending_error());
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit(std::function<void()>([&counter] { counter.fetch_add(1); }));
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, FirstFireAndForgetErrorWins) {
  ThreadPool pool(1);
  pool.submit(std::function<void()>([] { throw InvalidArgument("first"); }));
  pool.submit(std::function<void()>([] { throw InvalidArgument("second"); }));
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
}

TEST(ThreadPoolTest, InWorkerIsTrueOnlyInsideOwnWorkers) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.in_worker());
  std::future<bool> own = pool.submit([&pool] { return pool.in_worker(); });
  EXPECT_TRUE(own.get());
  ThreadPool other(1);
  std::future<bool> foreign =
      other.submit([&pool] { return pool.in_worker(); });
  EXPECT_FALSE(foreign.get());
}

TEST(KernelBudgetScopeTest, DefaultsUnlimitedOutsideWorkersAndOneInside) {
  ThreadPool pool(1);
  EXPECT_GE(KernelBudgetScope::current(), ThreadPool::global().size());
  std::future<std::size_t> inside =
      pool.submit([] { return KernelBudgetScope::current(); });
  EXPECT_EQ(inside.get(), 1u);
}

TEST(KernelBudgetScopeTest, NestsAndRestores) {
  const std::size_t outer = KernelBudgetScope::current();
  {
    KernelBudgetScope budget(2);
    EXPECT_EQ(KernelBudgetScope::current(), 2u);
    {
      KernelBudgetScope inner(1);
      EXPECT_EQ(KernelBudgetScope::current(), 1u);
    }
    EXPECT_EQ(KernelBudgetScope::current(), 2u);
  }
  EXPECT_EQ(KernelBudgetScope::current(), outer);
}

TEST(KernelBudgetScopeTest, RaisedBudgetLetsPoolTaskFanOut) {
  // A non-global pool's worker may fan a parallel_for onto the global pool
  // when its budget allows it; the loop must still cover the exact range.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(512);
  std::future<void> done = pool.submit([&] {
    KernelBudgetScope budget(4);
    parallel_for(0, 512, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  done.get();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, CoversExactRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::int64_t) { count.fetch_add(1); });
  parallel_for(5, 3, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelForTest, SingleElementRange) {
  std::atomic<int> seen{-1};
  parallel_for(41, 42, [&](std::int64_t i) { seen.store(static_cast<int>(i)); });
  EXPECT_EQ(seen.load(), 41);
}

TEST(ParallelForChunkedTest, ChunksPartitionTheRange) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_chunked(0, 257, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_LT(lo, hi);
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ComputesCorrectSum) {
  // Sum via per-iteration atomics as a correctness (not performance) check.
  std::atomic<long long> total{0};
  parallel_for(1, 1001, [&](std::int64_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 500500);
}

TEST(ParallelForTest, NestedInvocationCompletes) {
  // parallel_for inside a pool task must not deadlock: the inner call runs
  // inline when no spare workers exist.
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::int64_t) {
    parallel_for(0, 4, [&](std::int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace dcnas
