#include "dcnas/common/profiler.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dcnas {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { Profiler::global().reset(); }
  void TearDown() override { Profiler::global().reset(); }
};

TEST_F(ProfilerTest, RecordsAccumulate) {
  Profiler::global().record("phase_a", 0.5);
  Profiler::global().record("phase_a", 0.25);
  Profiler::global().record("phase_b", 1.0);
  EXPECT_DOUBLE_EQ(Profiler::global().total_seconds("phase_a"), 0.75);
  EXPECT_EQ(Profiler::global().call_count("phase_a"), 2);
  EXPECT_EQ(Profiler::global().call_count("phase_b"), 1);
  EXPECT_DOUBLE_EQ(Profiler::global().total_seconds("missing"), 0.0);
  EXPECT_EQ(Profiler::global().call_count("missing"), 0);
}

TEST_F(ProfilerTest, ScopedTimerMeasuresWallTime) {
  {
    ScopedTimer t("sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(Profiler::global().total_seconds("sleepy"), 0.015);
  EXPECT_EQ(Profiler::global().call_count("sleepy"), 1);
}

TEST_F(ProfilerTest, ReportSortsByTotalTime) {
  Profiler::global().record("small", 0.1);
  Profiler::global().record("big", 2.0);
  const std::string r = Profiler::global().report();
  EXPECT_LT(r.find("big"), r.find("small"));
  EXPECT_NE(r.find("calls"), std::string::npos);
  EXPECT_NE(r.find("mean(ms)"), std::string::npos);
}

TEST_F(ProfilerTest, ReportOrdersEqualTotalsByPhaseName) {
  // Identical totals used to leave the row order unspecified; the report
  // now breaks ties alphabetically so output is deterministic.
  Profiler::global().record("zeta", 0.5);
  Profiler::global().record("alpha", 0.5);
  Profiler::global().record("mid", 0.5);
  const std::string r = Profiler::global().report();
  EXPECT_LT(r.find("alpha"), r.find("mid"));
  EXPECT_LT(r.find("mid"), r.find("zeta"));
}

TEST_F(ProfilerTest, ResetClears) {
  Profiler::global().record("x", 1.0);
  Profiler::global().reset();
  EXPECT_EQ(Profiler::global().call_count("x"), 0);
}

TEST_F(ProfilerTest, ThreadSafeAccumulation) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Profiler::global().record("concurrent", 0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Profiler::global().call_count("concurrent"), 4000);
  EXPECT_NEAR(Profiler::global().total_seconds("concurrent"), 4.0, 1e-9);
}

}  // namespace
}  // namespace dcnas
