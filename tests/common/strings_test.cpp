#include "dcnas/common/strings.hpp"

#include <gtest/gtest.h>

namespace dcnas {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitEmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.145, 2), "3.15");  // round-half-up-ish via printf
  EXPECT_EQ(format_fixed(-0.5, 0), "-0");
  EXPECT_EQ(format_fixed(96.13, 2), "96.13");
}

TEST(StringsTest, PadAlignments) {
  EXPECT_EQ(pad("ab", 5), "ab   ");
  EXPECT_EQ(pad("ab", 5, true), "   ab");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace dcnas
