#include "dcnas/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dcnas {
namespace {

// Stress: many external submitter threads racing against pool workers and
// against each other. Verifies no task is lost or double-run under heavy
// submit contention.
TEST(ThreadPoolStressTest, ManyConcurrentSubmittersLoseNoTasks) {
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 500;
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.submit([&executed] { executed.fetch_add(1); });
      }
    });
  }
  for (auto& th : submitters) th.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
}

// Stress: wait_idle called from several threads while work is still being
// submitted from others. Every wait_idle must return (no missed wakeup) and
// must only return at a moment when the pool had nothing queued or running.
TEST(ThreadPoolStressTest, WaitIdleUnderContentionAlwaysReturns) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::atomic<int> submitted{0};
  constexpr int kRounds = 50;

  std::thread submitter([&] {
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < 20; ++i) {
        pool.submit([&executed] { executed.fetch_add(1); });
        submitted.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&pool] {
      for (int i = 0; i < 25; ++i) pool.wait_idle();
    });
  }
  for (auto& th : waiters) th.join();
  submitter.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), submitted.load());
  EXPECT_EQ(executed.load(), kRounds * 20);
}

// Stress: tasks that themselves submit follow-up work, interleaved with
// wait_idle from the outside — the recursive-producer pattern the serving
// layer leans on.
TEST(ThreadPoolStressTest, TasksSubmittingTasksDrainCompletely) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&pool, &executed] {
      executed.fetch_add(1);
      pool.submit([&executed] { executed.fetch_add(1); });
    });
  }
  // wait_idle must also cover the tasks enqueued *by* tasks: in_flight
  // stays nonzero until each parent finishes, and each child is queued
  // before its parent's in_flight decrement.
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 128);
}

}  // namespace
}  // namespace dcnas
