#include "dcnas/quant/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dcnas/common/rng.hpp"

namespace dcnas::quant {
namespace {

TEST(QuantizeTest, AbsmaxAndScaleConventions) {
  const float x[] = {0.5f, -2.0f, 1.25f};
  EXPECT_EQ(absmax(x, 3), 2.0f);
  EXPECT_EQ(scale_for_absmax(2.0f), 2.0f / 127.0f);
  // All-zero range: scale 1.0 by convention, so dequantization is exact.
  EXPECT_EQ(scale_for_absmax(0.0f), 1.0f);
}

TEST(QuantizeTest, WeightRoundTripErrorBoundedByHalfScale) {
  Rng rng(31);
  const std::int64_t oc = 12, row = 50;
  std::vector<float> w(static_cast<std::size_t>(oc * row));
  for (auto& v : w) v = 4.0f * static_cast<float>(rng.uniform()) - 2.0f;
  const QuantizedWeights qw = quantize_weights(w.data(), oc, row);
  ASSERT_EQ(qw.q.size(), w.size());
  ASSERT_EQ(qw.scale.size(), static_cast<std::size_t>(oc));
  for (std::int64_t c = 0; c < oc; ++c) {
    const float s = qw.scale[static_cast<std::size_t>(c)];
    ASSERT_GT(s, 0.0f);
    for (std::int64_t i = 0; i < row; ++i) {
      const std::size_t idx = static_cast<std::size_t>(c * row + i);
      const float back = static_cast<float>(qw.q[idx]) * s;
      // Round-to-nearest: reconstruction error is at most half a step.
      ASSERT_LE(std::abs(back - w[idx]), s * 0.5f + 1e-7f)
          << "channel " << c << " element " << i;
    }
  }
}

TEST(QuantizeTest, ChannelAbsmaxQuantizesToFullRange) {
  // The per-channel absmax element must land exactly on +-127.
  std::vector<float> w = {0.1f, -0.8f, 0.4f, 0.05f};  // 1 channel, 4 weights
  const QuantizedWeights qw = quantize_weights(w.data(), 1, 4);
  EXPECT_EQ(qw.q[1], -127);
  EXPECT_EQ(qw.scale[0], 0.8f / 127.0f);
}

TEST(QuantizeTest, AllZeroChannelIsExact) {
  std::vector<float> w = {0.0f, 0.0f, 0.0f, 1.0f, -1.0f, 0.5f};
  const QuantizedWeights qw = quantize_weights(w.data(), 2, 3);
  EXPECT_EQ(qw.scale[0], 1.0f);
  EXPECT_EQ(qw.q[0], 0);
  EXPECT_EQ(qw.q[1], 0);
  EXPECT_EQ(qw.q[2], 0);
}

TEST(QuantizeTest, ActivationSaturationIsCountedNotWrapped) {
  const float s = 1.0f / 127.0f;  // calibrated for [-1, 1]
  const float x[] = {0.5f, -3.0f, 1.0f, 2.5f};
  std::int8_t q[4];
  const std::int64_t saturated = quantize_activations(x, 4, s, q);
  EXPECT_EQ(saturated, 2);  // -3.0 and 2.5 are outside the calibrated range
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 127);
  EXPECT_EQ(q[3], 127);
}

TEST(QuantizeTest, DequantizeInvertsExactValues) {
  const std::int8_t q[] = {-127, 0, 64, 127};
  const float s = 0.03f;
  float x[4];
  dequantize(q, 4, s, x);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(x[i], static_cast<float>(q[i]) * s);
  }
}

TEST(QuantizeTest, QuantizationIsDeterministic) {
  Rng rng(5);
  std::vector<float> w(256);
  for (auto& v : w) v = static_cast<float>(rng.uniform()) - 0.5f;
  const QuantizedWeights a = quantize_weights(w.data(), 4, 64);
  const QuantizedWeights b = quantize_weights(w.data(), 4, 64);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.scale, b.scale);
}

}  // namespace
}  // namespace dcnas::quant
