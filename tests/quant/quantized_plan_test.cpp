#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "dcnas/analysis/diagnostic.hpp"
#include "dcnas/analysis/plan_verifier.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/nn/resnet.hpp"
#include "dcnas/plan/compiler.hpp"
#include "dcnas/plan/executor.hpp"
#include "dcnas/quant/quantize.hpp"
#include "dcnas/tensor/gemm_s8.hpp"

namespace dcnas::plan {
namespace {

using analysis::PlanVerifier;
using analysis::VerifyResult;
using graph::GraphExecutor;
using graph::KernelKind;
using graph::Precision;

struct Fixture {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  graph::ModelGraph graph;
  std::unique_ptr<GraphExecutor> exec;
  Tensor calibration;
};

Fixture make_fixture(std::int64_t hw = 24) {
  Fixture f;
  f.config = nn::ResNetConfig::baseline(5);
  f.config.init_width = 32;
  f.config.conv1_kernel = 3;
  f.config.conv1_padding = 1;
  Rng rng(17);
  f.model = std::make_unique<nn::ConfigurableResNet>(f.config, rng);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, hw, hw}, rng, -1.0f, 2.0f);
    f.model->forward(x);
  }
  f.model->set_training(false);
  f.graph = graph::build_resnet_graph(f.config, hw);
  f.exec = std::make_unique<GraphExecutor>(f.graph, *f.model);
  // The calibration fold: drawn from the same distribution inference sees,
  // so the per-tensor activation scales cover the live range.
  f.calibration = Tensor::rand_uniform({6, 5, hw, hw}, rng, -1.0f, 1.0f);
  return f;
}

CompiledPlan compile_int8(const Fixture& f) {
  CompileOptions opt;
  opt.precision = Precision::kInt8;
  opt.calibration = &f.calibration;
  return compile_plan(*f.exec, opt);
}

TEST(QuantizedPlanTest, Int8PlanCarriesPayloadOnEveryConvStep) {
  Fixture f = make_fixture();
  const CompiledPlan plan = compile_int8(f);
  EXPECT_EQ(plan.precision, Precision::kInt8);
  int quantized = 0;
  for (const auto& step : plan.steps) {
    const bool conv = step.kind == KernelKind::kConvBnRelu ||
                      step.kind == KernelKind::kConvBn ||
                      step.kind == KernelKind::kConvRelu ||
                      step.kind == KernelKind::kConv;
    if (conv) {
      EXPECT_EQ(step.precision, Precision::kInt8) << step.name;
      EXPECT_EQ(static_cast<std::int64_t>(step.weight_q.size()),
                step.weight.numel())
          << step.name;
      EXPECT_EQ(static_cast<std::int64_t>(step.weight_scale.size()),
                step.out_shape.c)
          << step.name;
      EXPECT_GT(step.in_scale, 0.0f) << step.name;
      ++quantized;
    } else {
      EXPECT_EQ(step.precision, Precision::kFp32) << step.name;
      EXPECT_TRUE(step.weight_q.empty()) << step.name;
    }
  }
  EXPECT_GT(quantized, 0);
  EXPECT_EQ(plan.quantized_steps, quantized);
}

TEST(QuantizedPlanTest, Int8OutputTracksFp32PlanWithinBound) {
  Fixture f = make_fixture();
  const CompiledPlan fp32_plan = compile_plan(*f.exec);
  const CompiledPlan int8_plan = compile_int8(f);
  PlanExecutor fp32_exec(fp32_plan);
  PlanExecutor int8_exec(int8_plan);
  Rng rng(93);
  const Tensor x = Tensor::rand_uniform({3, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor want = fp32_exec.run(x);
  const Tensor got = int8_exec.run(x);
  ASSERT_TRUE(want.same_shape(got));
  // Binary-classifier logits: per-channel weight quantization plus
  // per-tensor activation scales keep the logit drift small — and above
  // all, the argmax (the served class decision) must agree.
  double max_diff = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(want[i]) - got[i]));
  }
  EXPECT_LT(max_diff, 0.5) << "quantization drift too large";
  // Decision stability: quantization may only flip an argmax whose fp32
  // margin was already inside the drift band — a confidently classified
  // sample must classify the same way. (This untrained fixture has tiny
  // margins, so the drift band is what makes the check meaningful.)
  ASSERT_EQ(want.shape().size(), 2u);
  for (std::int64_t s = 0; s < want.shape()[0]; ++s) {
    const std::int64_t classes = want.shape()[1];
    std::int64_t want_arg = 0, got_arg = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (want[s * classes + c] > want[s * classes + want_arg]) want_arg = c;
      if (got[s * classes + c] > got[s * classes + got_arg]) got_arg = c;
    }
    double margin = 1e30;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (c == want_arg) continue;
      margin = std::min(margin,
                        static_cast<double>(want[s * classes + want_arg]) -
                            want[s * classes + c]);
    }
    if (margin > 2.0 * max_diff) {
      EXPECT_EQ(want_arg, got_arg) << "sample " << s << " margin " << margin;
    }
  }
}

TEST(QuantizedPlanTest, PointwiseFastPathMatchesIm2colBitwise) {
  // kernel=1/stride=1/padding=0 convs take the executor's direct-GEMM fast
  // path (no im2col gather). Build a 1x1-stem model, capture the stem
  // step's output with an observer, and check it is bitwise identical to
  // the reference gemm_s8_im2col route on the same quantized input.
  Fixture f;
  f.config = nn::ResNetConfig::baseline(5);
  f.config.init_width = 32;
  f.config.conv1_kernel = 1;
  f.config.conv1_stride = 1;
  f.config.conv1_padding = 0;
  Rng rng(17);
  f.model = std::make_unique<nn::ConfigurableResNet>(f.config, rng);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, 24, 24}, rng, -1.0f, 2.0f);
    f.model->forward(x);
  }
  f.model->set_training(false);
  f.graph = graph::build_resnet_graph(f.config, 24);
  f.exec = std::make_unique<GraphExecutor>(f.graph, *f.model);
  f.calibration = Tensor::rand_uniform({6, 5, 24, 24}, rng, -1.0f, 1.0f);
  const CompiledPlan plan = compile_int8(f);
  PlanExecutor exec(plan);

  Rng in_rng(41);
  const Tensor x = Tensor::rand_uniform({1, 5, 24, 24}, in_rng, -1.0f, 1.0f);
  std::vector<float> stem_out;
  const PlanStep* stem = nullptr;
  exec.run(x, [&](const PlanStep& step, const float* out, std::int64_t n) {
    if (stem == nullptr && step.attrs.kernel == 1 &&
        step.precision == Precision::kInt8) {
      stem = &step;
      stem_out.assign(out, out + n);
    }
  });
  ASSERT_NE(stem, nullptr) << "no int8 1x1 conv step found in the plan";
  ASSERT_EQ(stem->attrs.stride, 1);
  ASSERT_EQ(stem->attrs.padding, 0);

  // Reference route: quantize the input and run the im2col GEMM.
  std::vector<std::int8_t> q_in(static_cast<std::size_t>(x.numel()));
  quant::quantize_activations(x.data(), x.numel(), stem->in_scale,
                              q_in.data());
  Im2colSpec spec;
  spec.channels = stem->in_shape.c;
  spec.height = stem->in_shape.h;
  spec.width = stem->in_shape.w;
  spec.kernel = 1;
  spec.stride = 1;
  spec.padding = 0;
  QuantEpilogue epi;
  epi.scale = stem->requant_scale.data();
  epi.bias = stem->bias ? stem->bias->data() : nullptr;
  epi.relu = stem->kind == KernelKind::kConvRelu ||
             stem->kind == KernelKind::kConvBnRelu;
  std::vector<float> want(static_cast<std::size_t>(stem->out_shape.numel()));
  gemm_s8_im2col(stem->out_shape.c, stem->weight_q.data(), q_in.data(), spec,
                 epi, want.data());
  ASSERT_EQ(stem_out, want);
}

TEST(QuantizedPlanTest, Int8PlanIsDeterministic) {
  Fixture f = make_fixture();
  const CompiledPlan a = compile_int8(f);
  const CompiledPlan b = compile_int8(f);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t t = 0; t < a.steps.size(); ++t) {
    EXPECT_EQ(a.steps[t].weight_q, b.steps[t].weight_q);
    EXPECT_EQ(a.steps[t].weight_scale, b.steps[t].weight_scale);
    EXPECT_EQ(a.steps[t].requant_scale, b.steps[t].requant_scale);
    EXPECT_EQ(a.steps[t].in_scale, b.steps[t].in_scale);
  }
}

TEST(QuantizedPlanTest, VerifierAcceptsCompiledInt8Plan) {
  Fixture f = make_fixture();
  const CompiledPlan plan = compile_int8(f);
  const VerifyResult result = PlanVerifier::standard().verify(plan, *f.exec);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(QuantizedPlanTest, VerifierRejectsCorruptedRequantScale) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_int8(f);
  for (auto& step : plan.steps) {
    if (!step.requant_scale.empty()) {
      step.requant_scale[0] *= 1.5f;
      break;
    }
  }
  const VerifyResult result = PlanVerifier::standard().verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(analysis::rules::kPlanQuant))
      << result.to_string();
}

TEST(QuantizedPlanTest, VerifierRejectsCorruptedQuantizedWeight) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_int8(f);
  for (auto& step : plan.steps) {
    if (!step.weight_q.empty()) {
      step.weight_q[0] = static_cast<std::int8_t>(step.weight_q[0] ^ 0x7f);
      break;
    }
  }
  const VerifyResult result = PlanVerifier::standard().verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(analysis::rules::kPlanQuant))
      << result.to_string();
}

TEST(QuantizedPlanTest, VerifierRejectsPayloadOnFp32Plan) {
  Fixture f = make_fixture();
  const CompiledPlan int8_plan = compile_int8(f);
  CompiledPlan plan = compile_plan(*f.exec);
  // Graft an int8 payload onto the fp32 plan: a fp32 plan must carry none.
  for (std::size_t t = 0; t < plan.steps.size(); ++t) {
    if (!int8_plan.steps[t].weight_q.empty()) {
      plan.steps[t].weight_q = int8_plan.steps[t].weight_q;
      plan.steps[t].in_scale = int8_plan.steps[t].in_scale;
      break;
    }
  }
  const VerifyResult result = PlanVerifier::standard().verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(analysis::rules::kPlanQuant))
      << result.to_string();
}

TEST(QuantizedPlanTest, CompileRequiresCalibrationBatch) {
  Fixture f = make_fixture();
  CompileOptions opt;
  opt.precision = Precision::kInt8;
  EXPECT_THROW(compile_plan(*f.exec, opt), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::plan
