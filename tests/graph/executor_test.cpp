#include "dcnas/graph/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcnas/graph/builder.hpp"

namespace dcnas::graph {
namespace {

/// Builds a trained-ish model (a few BN-updating forward passes so running
/// stats are non-trivial) plus its graph at a small input size.
struct Bundle {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  ModelGraph graph;
};

Bundle make_bundle(std::int64_t width, std::int64_t hw,
                   bool with_pool = true) {
  Bundle b;
  b.config = nn::ResNetConfig::baseline(5);
  b.config.init_width = width;
  b.config.conv1_kernel = 3;
  b.config.conv1_padding = 1;
  b.config.with_pool = with_pool;
  Rng rng(17);
  b.model = std::make_unique<nn::ConfigurableResNet>(b.config, rng);
  // Push a couple of batches through in training mode so running
  // statistics leave their init values.
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, hw, hw}, rng, -1.0f, 2.0f);
    b.model->forward(x);
  }
  b.model->set_training(false);
  b.graph = build_resnet_graph(b.config, hw);
  return b;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

TEST(GraphExecutorTest, MatchesLiveModelEvalMode) {
  Bundle b = make_bundle(32, 32);
  GraphExecutor exec(b.graph, *b.model);
  Rng rng(3);
  const Tensor x = Tensor::rand_uniform({2, 5, 32, 32}, rng, -1.0f, 1.0f);
  const Tensor from_model = b.model->forward(x);
  const Tensor from_graph = exec.run(x);
  EXPECT_LT(max_abs_diff(from_model, from_graph), 1e-4);
}

TEST(GraphExecutorTest, MatchesLiveModelWithoutPool) {
  Bundle b = make_bundle(32, 24, /*with_pool=*/false);
  GraphExecutor exec(b.graph, *b.model);
  Rng rng(4);
  const Tensor x = Tensor::rand_uniform({1, 5, 24, 24}, rng, -1.0f, 1.0f);
  EXPECT_LT(max_abs_diff(b.model->forward(x), exec.run(x)), 1e-4);
}

TEST(GraphExecutorTest, BatchNormFoldingPreservesOutputs) {
  // The core claim behind Conv+BN kernel fusion: folding is exact.
  Bundle b = make_bundle(32, 32);
  GraphExecutor exec(b.graph, *b.model);
  Rng rng(5);
  const Tensor x = Tensor::rand_uniform({2, 5, 32, 32}, rng, -1.0f, 1.0f);
  const Tensor before = exec.run(x);
  EXPECT_FALSE(exec.folded());
  exec.fold_batchnorm();
  EXPECT_TRUE(exec.folded());
  const Tensor after = exec.run(x);
  EXPECT_LT(max_abs_diff(before, after), 2e-3);
}

TEST(GraphExecutorTest, FoldsEveryConvBnPair) {
  Bundle b = make_bundle(32, 32);
  GraphExecutor exec(b.graph, *b.model);
  exec.fold_batchnorm();
  // Every BatchNorm in a ResNet directly follows a conv -> all fold.
  int bn_nodes = 0;
  for (const auto& n : b.graph.nodes()) {
    bn_nodes += n.kind == OpKind::kBatchNorm;
  }
  EXPECT_EQ(exec.folded_batchnorms(), bn_nodes);
  // Idempotent.
  exec.fold_batchnorm();
  EXPECT_EQ(exec.folded_batchnorms(), bn_nodes);
}

TEST(GraphExecutorTest, RejectsMismatchedModel) {
  Bundle b = make_bundle(32, 32);
  nn::ResNetConfig other = b.config;
  other.init_width = 48;
  Rng rng(9);
  nn::ConfigurableResNet wrong(other, rng);
  EXPECT_THROW(GraphExecutor(b.graph, wrong), InvalidArgument);
}

TEST(GraphExecutorTest, RejectsBadInput) {
  Bundle b = make_bundle(32, 32);
  GraphExecutor exec(b.graph, *b.model);
  EXPECT_THROW(exec.run(Tensor({1, 4, 32, 32})), InvalidArgument);
}

TEST(GraphExecutorTest, BatchInvariance) {
  // Running two samples together equals running them separately (eval
  // mode has no cross-sample coupling).
  Bundle b = make_bundle(32, 24);
  GraphExecutor exec(b.graph, *b.model);
  Rng rng(6);
  const Tensor batch = Tensor::rand_uniform({2, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor both = exec.run(batch);
  // Slice each sample.
  const std::int64_t chw = 5 * 24 * 24;
  for (int s = 0; s < 2; ++s) {
    Tensor one({1, 5, 24, 24});
    std::copy(batch.data() + s * chw, batch.data() + (s + 1) * chw,
              one.data());
    const Tensor y = exec.run(one);
    for (std::int64_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(y.at(0, c), both.at(s, c), 1e-4) << "sample " << s;
    }
  }
}

}  // namespace
}  // namespace dcnas::graph
