#include "dcnas/graph/fusion.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dcnas/graph/builder.hpp"

namespace dcnas::graph {
namespace {

using nn::ResNetConfig;

std::map<KernelKind, int> kind_counts(const std::vector<FusedKernel>& ks) {
  std::map<KernelKind, int> counts;
  for (const auto& k : ks) counts[k.kind]++;
  return counts;
}

TEST(FusionTest, ChainFusesToSingleKernel) {
  ModelGraph g;
  const int in = g.add_input({3, 16, 16});
  const int c = g.add_conv(in, 8, 3, 1, 1, "c");
  const int b = g.add_batchnorm(c, "b");
  const int r = g.add_relu(b, "r");
  g.add_output(r);
  const auto kernels = fuse_graph(g);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].kind, KernelKind::kConvBnRelu);
  // Folded BN contributes no FLOPs; ReLU's elementwise FLOPs remain.
  EXPECT_EQ(kernels[0].flops, g.node(c).flops + g.node(r).flops);
  EXPECT_EQ(kernels[0].params, g.node(c).params + g.node(b).params);
}

TEST(FusionTest, ConvBnWithoutReluStopsAtConvBn) {
  ModelGraph g;
  const int in = g.add_input({3, 8, 8});
  const int c = g.add_conv(in, 4, 3, 1, 1, "c");
  const int b = g.add_batchnorm(c, "b");
  g.add_output(b);
  const auto kernels = fuse_graph(g);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].kind, KernelKind::kConvBn);
}

TEST(FusionTest, MultiConsumerBlocksFusion) {
  // BN output feeds both a ReLU and an Add: the ReLU cannot fuse away.
  ModelGraph g;
  const int in = g.add_input({4, 8, 8});
  const int c = g.add_conv(in, 4, 3, 1, 1, "c");
  const int b = g.add_batchnorm(c, "b");
  const int r = g.add_relu(b, "r");
  const int a = g.add_add(r, b, "a");
  g.add_output(a);
  const auto kernels = fuse_graph(g);
  const auto counts = kind_counts(kernels);
  EXPECT_EQ(counts.at(KernelKind::kConvBn), 1);  // conv+bn still fuse
  EXPECT_EQ(counts.at(KernelKind::kRelu), 1);    // relu stays standalone
  EXPECT_EQ(counts.at(KernelKind::kAdd), 1);
}

TEST(FusionTest, BaselineResNetKernelInventory) {
  const auto kernels = fuse_graph(build_resnet_graph(ResNetConfig::baseline(5)));
  const auto counts = kind_counts(kernels);
  // 17 conv+bn+relu (conv1 + 2 per block), 11 conv+bn (block tails + 3
  // projections), 8 add+relu, 1 maxpool, 1 gap, 1 fc.
  EXPECT_EQ(counts.at(KernelKind::kConvBnRelu), 9);
  EXPECT_EQ(counts.at(KernelKind::kConvBn), 11);
  EXPECT_EQ(counts.at(KernelKind::kAddRelu), 8);
  EXPECT_EQ(counts.at(KernelKind::kMaxPool), 1);
  EXPECT_EQ(counts.at(KernelKind::kGlobalAvgPool), 1);
  EXPECT_EQ(counts.at(KernelKind::kLinear), 1);
  EXPECT_EQ(counts.count(KernelKind::kRelu), 0u);
  EXPECT_EQ(counts.count(KernelKind::kBatchNorm), 0u);
}

TEST(FusionTest, FusedFlopsDropBatchNormOnly) {
  const ModelGraph g = build_resnet_graph(ResNetConfig::baseline(5));
  std::int64_t bn_flops = 0;
  for (const auto& n : g.nodes()) {
    if (n.kind == OpKind::kBatchNorm) bn_flops += n.flops;
  }
  const auto kernels = fuse_graph(g);
  EXPECT_EQ(fused_flops(kernels), g.total_flops() - bn_flops);
}

TEST(FusionTest, ParamsConservedThroughFusion) {
  const ModelGraph g = build_resnet_graph(ResNetConfig::baseline(7));
  const auto kernels = fuse_graph(g);
  std::int64_t fused_params = 0;
  for (const auto& k : kernels) fused_params += k.params;
  EXPECT_EQ(fused_params, g.total_params());
}

TEST(FusionTest, AddKernelCountsBothOperandsAsInput) {
  FusedKernel k;
  k.kind = KernelKind::kAddRelu;
  k.in_shape = {8, 4, 4};
  k.out_shape = k.in_shape;
  EXPECT_EQ(k.input_bytes(), 2 * 4 * 8 * 4 * 4);
  k.kind = KernelKind::kConv;
  EXPECT_EQ(k.input_bytes(), 4 * 8 * 4 * 4);
}

TEST(FusionTest, KernelKindNamesAreDistinct) {
  EXPECT_STRNE(kernel_kind_name(KernelKind::kConvBnRelu),
               kernel_kind_name(KernelKind::kConvBn));
  EXPECT_STREQ(kernel_kind_name(KernelKind::kAddRelu), "add-relu");
}

}  // namespace
}  // namespace dcnas::graph
