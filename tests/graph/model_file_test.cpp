#include "dcnas/graph/model_file.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/serialize.hpp"

namespace dcnas::graph {
namespace {

struct Saved {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  std::unique_ptr<GraphExecutor> exec;
};

Saved make_saved(std::int64_t hw = 24) {
  Saved s;
  s.config = nn::ResNetConfig::baseline(5);
  s.config.init_width = 32;
  s.config.conv1_kernel = 3;
  s.config.conv1_padding = 1;
  Rng rng(21);
  s.model = std::make_unique<nn::ConfigurableResNet>(s.config, rng);
  for (int i = 0; i < 2; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, hw, hw}, rng, -1.0f, 1.0f);
    s.model->forward(x);
  }
  s.model->set_training(false);
  s.exec = std::make_unique<GraphExecutor>(build_resnet_graph(s.config, hw),
                                           *s.model);
  return s;
}

TEST(ModelFileTest, RoundTripReproducesInferenceExactly) {
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  const GraphExecutor back = parse_model(bytes);
  Rng rng(2);
  const Tensor x = Tensor::rand_uniform({2, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor a = s.exec->run(x);
  const Tensor b = back.run(x);
  ASSERT_TRUE(a.same_shape(b));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "bit-exact round trip expected at " << i;
  }
}

TEST(ModelFileTest, FoldedModelRoundTrips) {
  Saved s = make_saved();
  s.exec->fold_batchnorm();
  const GraphExecutor back = parse_model(serialize_model(*s.exec));
  EXPECT_TRUE(back.folded());
  EXPECT_EQ(back.folded_batchnorms(), s.exec->folded_batchnorms());
  Rng rng(3);
  const Tensor x = Tensor::rand_uniform({1, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor a = s.exec->run(x);
  const Tensor b = back.run(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(ModelFileTest, FileSizeMatchesSizeEstimate) {
  // The paper's memory objective = serialized model size. Our analytic
  // estimate (serialize.hpp) must agree with the real writer within 2%.
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  const auto estimate = serialized_size(s.exec->graph());
  const double actual = static_cast<double>(bytes.size());
  EXPECT_NEAR(actual / static_cast<double>(estimate.total_bytes()), 1.0, 0.02);
}

TEST(ModelFileTest, SaveAndLoadFile) {
  Saved s = make_saved();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_model_test.dcnx")
          .string();
  const std::int64_t written = save_model(*s.exec, path);
  EXPECT_EQ(written,
            static_cast<std::int64_t>(std::filesystem::file_size(path)));
  const GraphExecutor back = load_model(path);
  Rng rng(4);
  const Tensor x = Tensor::rand_uniform({1, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor a = s.exec->run(x);
  const Tensor b = back.run(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(ModelFileTest, RejectsCorruptedFiles) {
  Saved s = make_saved();
  auto bytes = serialize_model(*s.exec);
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_model(bad_magic), InvalidArgument);
  // Truncation at several depths.
  for (std::size_t cut : {std::size_t{5}, std::size_t{40},
                          bytes.size() / 2, bytes.size() - 3}) {
    std::vector<unsigned char> truncated(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(parse_model(truncated), InvalidArgument) << "cut=" << cut;
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(parse_model(padded), InvalidArgument);
  // Version bump.
  auto versioned = bytes;
  versioned[4] = 9;
  EXPECT_THROW(parse_model(versioned), InvalidArgument);
}

TEST(ModelFileTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_model("/nonexistent/model.dcnx"), InvalidArgument);
}

TEST(ModelFileTest, BadMagicThrowsForEveryMagicByte) {
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  for (std::size_t i = 0; i < 4; ++i) {
    auto bad = bytes;
    bad[i] ^= 0xFF;
    EXPECT_THROW(parse_model(bad), InvalidArgument) << "magic byte " << i;
  }
  EXPECT_THROW(parse_model({}), InvalidArgument);
  EXPECT_THROW(parse_model({'D', 'C', 'N', 'X'}), InvalidArgument);
}

TEST(ModelFileTest, TruncatedBufferThrowsAtEveryDepth) {
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  // Sweep cut points through the whole file (headers, node metadata, and
  // deep inside tensor payloads) — truncation must always be a clean throw.
  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 97);
  for (std::size_t cut = 4; cut < bytes.size(); cut += step) {
    std::vector<unsigned char> truncated(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(parse_model(truncated), InvalidArgument) << "cut=" << cut;
  }
}

TEST(ModelFileTest, CorruptedTensorLengthThrows) {
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  // The first stored tensor is conv1's weight; its u32 length prefix is the
  // first occurrence of the value 32*5*3*3 = 1440 (all preceding fields are
  // small ints, short names, and the header).
  const std::uint32_t numel = 32u * 5u * 3u * 3u;
  ASSERT_EQ(s.exec->node_states()[1].conv_weight.numel(),
            static_cast<std::int64_t>(numel));
  std::size_t pos = bytes.size();
  for (std::size_t i = 12; i + 4 <= bytes.size(); ++i) {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + i, 4);
    if (v == numel) {
      pos = i;
      break;
    }
  }
  ASSERT_LT(pos, bytes.size()) << "conv weight length field not found";

  for (const std::uint32_t corrupt :
       {numel - 1, numel + 1, std::uint32_t{0}, std::uint32_t{0x7FFFFFFF}}) {
    auto bad = bytes;
    std::memcpy(bad.data() + pos, &corrupt, 4);
    EXPECT_THROW(parse_model(bad), InvalidArgument) << "length=" << corrupt;
  }
}

TEST(ModelFileTest, SingleByteCorruptionNeverCrashes) {
  // Flip one byte at a stride of sampled positions: parse_model must either
  // reject with a dcnas::Error or succeed (flips inside fp32 payloads are
  // legitimately undetectable) — never crash or throw anything else.
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 211);
  for (std::size_t i = 0; i < bytes.size(); i += step) {
    auto mutated = bytes;
    mutated[i] ^= 0x5A;
    try {
      parse_model(mutated);
    } catch (const Error&) {
      // acceptable: clean structured rejection
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace dcnas::graph
