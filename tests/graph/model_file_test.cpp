#include "dcnas/graph/model_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/serialize.hpp"

namespace dcnas::graph {
namespace {

struct Saved {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  std::unique_ptr<GraphExecutor> exec;
};

Saved make_saved(std::int64_t hw = 24) {
  Saved s;
  s.config = nn::ResNetConfig::baseline(5);
  s.config.init_width = 32;
  s.config.conv1_kernel = 3;
  s.config.conv1_padding = 1;
  Rng rng(21);
  s.model = std::make_unique<nn::ConfigurableResNet>(s.config, rng);
  for (int i = 0; i < 2; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, hw, hw}, rng, -1.0f, 1.0f);
    s.model->forward(x);
  }
  s.model->set_training(false);
  s.exec = std::make_unique<GraphExecutor>(build_resnet_graph(s.config, hw),
                                           *s.model);
  return s;
}

TEST(ModelFileTest, RoundTripReproducesInferenceExactly) {
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  const GraphExecutor back = parse_model(bytes);
  Rng rng(2);
  const Tensor x = Tensor::rand_uniform({2, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor a = s.exec->run(x);
  const Tensor b = back.run(x);
  ASSERT_TRUE(a.same_shape(b));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "bit-exact round trip expected at " << i;
  }
}

TEST(ModelFileTest, FoldedModelRoundTrips) {
  Saved s = make_saved();
  s.exec->fold_batchnorm();
  const GraphExecutor back = parse_model(serialize_model(*s.exec));
  EXPECT_TRUE(back.folded());
  EXPECT_EQ(back.folded_batchnorms(), s.exec->folded_batchnorms());
  Rng rng(3);
  const Tensor x = Tensor::rand_uniform({1, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor a = s.exec->run(x);
  const Tensor b = back.run(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(ModelFileTest, FileSizeMatchesSizeEstimate) {
  // The paper's memory objective = serialized model size. Our analytic
  // estimate (serialize.hpp) must agree with the real writer within 2%.
  Saved s = make_saved();
  const auto bytes = serialize_model(*s.exec);
  const auto estimate = serialized_size(s.exec->graph());
  const double actual = static_cast<double>(bytes.size());
  EXPECT_NEAR(actual / static_cast<double>(estimate.total_bytes()), 1.0, 0.02);
}

TEST(ModelFileTest, SaveAndLoadFile) {
  Saved s = make_saved();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_model_test.dcnx")
          .string();
  const std::int64_t written = save_model(*s.exec, path);
  EXPECT_EQ(written,
            static_cast<std::int64_t>(std::filesystem::file_size(path)));
  const GraphExecutor back = load_model(path);
  Rng rng(4);
  const Tensor x = Tensor::rand_uniform({1, 5, 24, 24}, rng, -1.0f, 1.0f);
  const Tensor a = s.exec->run(x);
  const Tensor b = back.run(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(ModelFileTest, RejectsCorruptedFiles) {
  Saved s = make_saved();
  auto bytes = serialize_model(*s.exec);
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_model(bad_magic), InvalidArgument);
  // Truncation at several depths.
  for (std::size_t cut : {std::size_t{5}, std::size_t{40},
                          bytes.size() / 2, bytes.size() - 3}) {
    std::vector<unsigned char> truncated(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(parse_model(truncated), InvalidArgument) << "cut=" << cut;
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(parse_model(padded), InvalidArgument);
  // Version bump.
  auto versioned = bytes;
  versioned[4] = 9;
  EXPECT_THROW(parse_model(versioned), InvalidArgument);
}

TEST(ModelFileTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_model("/nonexistent/model.dcnx"), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::graph
