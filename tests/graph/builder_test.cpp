#include "dcnas/graph/builder.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/rng.hpp"

namespace dcnas::graph {
namespace {

using nn::ResNetConfig;

TEST(BuilderTest, BaselineGraphValidates) {
  const ModelGraph g = build_resnet_graph(ResNetConfig::baseline(5));
  EXPECT_NO_THROW(g.validate());
  // Input + conv1/bn/relu + pool + 8 blocks (6 or 8 nodes each) + gap + fc
  // + output: sanity-range the node count.
  EXPECT_GT(g.size(), 50u);
  EXPECT_LT(g.size(), 90u);
}

TEST(BuilderTest, GraphParamsMatchLiveModelPlusRunningStats) {
  // The graph counts BatchNorm running statistics (serialized with ONNX)
  // while the live module's learnable count does not: difference must be
  // exactly 2 scalars per BatchNorm channel.
  Rng rng(1);
  const ResNetConfig cfg = ResNetConfig::baseline(5);
  nn::ConfigurableResNet model(cfg, rng);
  const ModelGraph g = build_resnet_graph(cfg);
  std::int64_t bn_channels = 0;
  for (const auto& n : g.nodes()) {
    if (n.kind == OpKind::kBatchNorm) bn_channels += n.out_shape.c;
  }
  EXPECT_EQ(g.total_params(), model.num_params() + 2 * bn_channels);
}

TEST(BuilderTest, BaselineFlopsNearPublishedResNet18) {
  // Stock ResNet-18 at 224x224 is ~1.8 GMACs = ~3.6 GFLOPs under the
  // 2-FLOPs-per-MAC convention; our 5-channel variant lands just above.
  const ModelGraph g = build_resnet_graph(ResNetConfig::baseline(5), 224);
  const double gflops = static_cast<double>(g.total_flops()) / 1e9;
  EXPECT_GT(gflops, 3.4);
  EXPECT_LT(gflops, 4.4);
}

TEST(BuilderTest, SpatialFlowBaseline) {
  const ModelGraph g = build_resnet_graph(ResNetConfig::baseline(7), 224);
  // conv1 stride 2: 224 -> 112; pool: -> 56; stages: 56,28,14,7.
  bool saw_56 = false, saw_7 = false;
  for (const auto& n : g.nodes()) {
    if (n.kind == OpKind::kConv && n.out_shape.h == 56) saw_56 = true;
    if (n.kind == OpKind::kConv && n.out_shape.h == 7) saw_7 = true;
  }
  EXPECT_TRUE(saw_56);
  EXPECT_TRUE(saw_7);
}

TEST(BuilderTest, NoPoolVariantKeepsResolution) {
  ResNetConfig cfg = ResNetConfig::baseline(5);
  cfg.with_pool = false;
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  const ModelGraph with = build_resnet_graph(ResNetConfig::baseline(5), 224);
  const ModelGraph without = build_resnet_graph(cfg, 224);
  // Removing the stride-2 pool roughly quadruples stage FLOPs, but the
  // narrower width (32) divides by ~4: same order of magnitude overall,
  // strictly more FLOPs per parameter.
  EXPECT_GT(static_cast<double>(without.total_flops()) /
                static_cast<double>(without.total_params()),
            static_cast<double>(with.total_flops()) /
                static_cast<double>(with.total_params()));
}

TEST(BuilderTest, PoolChoiceChangesKernelCount) {
  ResNetConfig pool = ResNetConfig::baseline(5);
  ResNetConfig nopool = pool;
  nopool.with_pool = false;
  const ModelGraph a = build_resnet_graph(pool);
  const ModelGraph b = build_resnet_graph(nopool);
  EXPECT_EQ(a.size(), b.size() + 1);
}

struct BuilderCase {
  std::int64_t kernel, stride, padding, width;
  bool pool;
};

class BuilderSweep : public ::testing::TestWithParam<BuilderCase> {};

TEST_P(BuilderSweep, AllSearchPointsBuildValidGraphs) {
  const auto c = GetParam();
  ResNetConfig cfg;
  cfg.in_channels = 7;
  cfg.conv1_kernel = c.kernel;
  cfg.conv1_stride = c.stride;
  cfg.conv1_padding = c.padding;
  cfg.with_pool = c.pool;
  cfg.init_width = c.width;
  const ModelGraph g = build_resnet_graph(cfg);
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.total_params(), 1'000'000);
  EXPECT_GT(g.total_flops(), 100'000'000);
}

INSTANTIATE_TEST_SUITE_P(
    SearchCorners, BuilderSweep,
    ::testing::Values(BuilderCase{3, 2, 1, 32, true},
                      BuilderCase{3, 1, 3, 32, false},
                      BuilderCase{7, 1, 1, 64, false},
                      BuilderCase{7, 2, 3, 48, true},
                      BuilderCase{3, 2, 2, 64, true}));

TEST(BuilderTest, RejectsBadInputSize) {
  EXPECT_THROW(build_resnet_graph(ResNetConfig::baseline(5), 0),
               InvalidArgument);
}

}  // namespace
}  // namespace dcnas::graph
