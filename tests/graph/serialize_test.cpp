#include "dcnas/graph/serialize.hpp"

#include <gtest/gtest.h>

#include "dcnas/graph/builder.hpp"

namespace dcnas::graph {
namespace {

using nn::ResNetConfig;

TEST(SerializeTest, BaselineMemoryMatchesPaperScale) {
  // Paper Table 5: 44.71 MB (5ch) and 44.73 MB (7ch). Our ONNX-style size
  // model (fp32 initializers incl. BN running stats + small structure
  // overhead) must land within 0.3% of those figures.
  const double mb5 = model_memory_mb(build_resnet_graph(ResNetConfig::baseline(5)));
  const double mb7 = model_memory_mb(build_resnet_graph(ResNetConfig::baseline(7)));
  EXPECT_NEAR(mb5, 44.71, 0.15);
  EXPECT_NEAR(mb7, 44.73, 0.15);
  EXPECT_GT(mb7, mb5);  // two extra conv1 input channels
}

TEST(SerializeTest, Width32Kernel3MatchesParetoMemory) {
  // All five Table 4 winners report 11.18 MB with width 32, kernel 3.
  ResNetConfig cfg = ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  EXPECT_NEAR(model_memory_mb(build_resnet_graph(cfg)), 11.18, 0.08);
  cfg.in_channels = 7;
  EXPECT_NEAR(model_memory_mb(build_resnet_graph(cfg)), 11.18, 0.08);
}

TEST(SerializeTest, PoolingDoesNotChangeMemory) {
  ResNetConfig a = ResNetConfig::baseline(5);
  ResNetConfig b = a;
  b.with_pool = false;
  const auto sa = serialized_size(build_resnet_graph(a));
  const auto sb = serialized_size(build_resnet_graph(b));
  EXPECT_EQ(sa.initializer_bytes, sb.initializer_bytes);
  // Structure differs by exactly one pool node record.
  EXPECT_GT(sa.structure_bytes, sb.structure_bytes);
}

TEST(SerializeTest, BreakdownSumsToTotal) {
  const auto s = serialized_size(build_resnet_graph(ResNetConfig::baseline(5)));
  EXPECT_EQ(s.total_bytes(),
            s.initializer_bytes + s.structure_bytes + s.header_bytes);
  EXPECT_GT(s.initializer_bytes, 100 * s.structure_bytes);
  EXPECT_DOUBLE_EQ(s.total_mb(), static_cast<double>(s.total_bytes()) / 1e6);
}

TEST(SerializeTest, InitializersAreFourBytesPerParam) {
  const ModelGraph g = build_resnet_graph(ResNetConfig::baseline(5));
  const auto s = serialized_size(g);
  EXPECT_EQ(s.initializer_bytes, 4 * g.total_params());
}

TEST(SerializeTest, WidthOrderingMatchesTable3Range) {
  // Memory must be monotone in width and span ~[11.18, 44.7] MB over the
  // search space (Table 3 memory range).
  double prev = 0.0;
  for (std::int64_t width : {32, 48, 64}) {
    ResNetConfig cfg = ResNetConfig::baseline(7);
    cfg.init_width = width;
    cfg.conv1_kernel = 3;
    cfg.conv1_padding = 1;
    const double mb = model_memory_mb(build_resnet_graph(cfg));
    EXPECT_GT(mb, prev);
    prev = mb;
  }
  EXPECT_NEAR(prev, 44.7, 0.2);
}

}  // namespace
}  // namespace dcnas::graph
