#include "dcnas/graph/ir.hpp"

#include <gtest/gtest.h>

namespace dcnas::graph {
namespace {

ModelGraph tiny_graph() {
  ModelGraph g;
  const int in = g.add_input({3, 8, 8});
  const int c = g.add_conv(in, 4, 3, 1, 1, "c");
  const int b = g.add_batchnorm(c, "b");
  const int r = g.add_relu(b, "r");
  const int p = g.add_global_avgpool(r, "gap");
  const int f = g.add_linear(p, 2, "fc");
  g.add_output(f);
  return g;
}

TEST(ModelGraphTest, ShapeInferenceThroughChain) {
  const ModelGraph g = tiny_graph();
  EXPECT_EQ(g.node(1).out_shape, (ActShape{4, 8, 8}));
  EXPECT_EQ(g.node(4).out_shape, (ActShape{4, 1, 1}));
  EXPECT_EQ(g.node(5).out_shape, (ActShape{2, 1, 1}));
  EXPECT_NO_THROW(g.validate());
}

TEST(ModelGraphTest, ConvParamAndFlopAccounting) {
  const ModelGraph g = tiny_graph();
  const GraphNode& conv = g.node(1);
  EXPECT_EQ(conv.params, 4 * 3 * 3 * 3);
  EXPECT_EQ(conv.flops, 2 * conv.params * 8 * 8);
  const GraphNode& bn = g.node(2);
  EXPECT_EQ(bn.params, 4 * 4);  // gamma, beta, running mean, running var
  const GraphNode& fc = g.node(5);
  EXPECT_EQ(fc.params, 4 * 2 + 2);
  EXPECT_EQ(fc.flops, 2 * 4 * 2);
}

TEST(ModelGraphTest, TotalsSumNodes) {
  const ModelGraph g = tiny_graph();
  std::int64_t params = 0, flops = 0;
  for (const auto& n : g.nodes()) {
    params += n.params;
    flops += n.flops;
  }
  EXPECT_EQ(g.total_params(), params);
  EXPECT_EQ(g.total_flops(), flops);
  EXPECT_GT(g.total_flops(), 0);
}

TEST(ModelGraphTest, MaxActivationBytes) {
  const ModelGraph g = tiny_graph();
  // Largest activation: 4x8x8 fp32 = 1024 bytes.
  EXPECT_EQ(g.max_activation_bytes(), 4 * 8 * 8 * 4);
}

TEST(ModelGraphTest, AddRequiresMatchingShapes) {
  ModelGraph g;
  const int in = g.add_input({3, 8, 8});
  const int a = g.add_conv(in, 4, 3, 1, 1, "a");
  const int b = g.add_conv(in, 4, 3, 2, 1, "b");  // different spatial size
  EXPECT_THROW(g.add_add(a, b, "bad"), InvalidArgument);
  const int c = g.add_conv(in, 4, 3, 1, 1, "c");
  EXPECT_NO_THROW(g.add_add(a, c, "ok"));
}

TEST(ModelGraphTest, InputMustBeFirstAndValid) {
  ModelGraph g;
  g.add_input({1, 4, 4});
  EXPECT_THROW(g.add_input({1, 4, 4}), InvalidArgument);
  ModelGraph g2;
  EXPECT_THROW(g2.add_input({0, 4, 4}), InvalidArgument);
}

TEST(ModelGraphTest, ValidateCatchesMissingOutput) {
  ModelGraph g;
  const int in = g.add_input({1, 4, 4});
  g.add_relu(in, "r");
  EXPECT_THROW(g.validate(), InvalidArgument);
}

TEST(ModelGraphTest, ConsumersAreInverted) {
  ModelGraph g;
  const int in = g.add_input({2, 4, 4});
  const int a = g.add_conv(in, 2, 3, 1, 1, "a");
  const int b = g.add_relu(a, "b");
  const int s = g.add_add(b, a, "s");  // a consumed twice: relu + add
  g.add_output(s);
  const auto cons = g.consumers();
  EXPECT_EQ(cons[static_cast<std::size_t>(a)].size(), 2u);
  EXPECT_EQ(cons[static_cast<std::size_t>(in)].size(), 1u);
}

TEST(ModelGraphTest, MaxPoolPaddingRule) {
  ModelGraph g;
  const int in = g.add_input({2, 8, 8});
  EXPECT_THROW(g.add_maxpool(in, 3, 2, 2, "bad"), InvalidArgument);
  EXPECT_NO_THROW(g.add_maxpool(in, 2, 2, 1, "k2p1"));  // PyTorch-legal
  EXPECT_NO_THROW(g.add_maxpool(in, 3, 2, 1, "ok"));
}

TEST(ModelGraphTest, ToStringMentionsEveryNode) {
  const ModelGraph g = tiny_graph();
  const std::string s = g.to_string();
  EXPECT_NE(s.find("Conv"), std::string::npos);
  EXPECT_NE(s.find("GlobalAvgPool"), std::string::npos);
  EXPECT_NE(s.find("params="), std::string::npos);
}

TEST(OpKindTest, NamesAreUnique) {
  EXPECT_STREQ(op_kind_name(OpKind::kConv), "Conv");
  EXPECT_STREQ(op_kind_name(OpKind::kLinear), "Linear");
}

}  // namespace
}  // namespace dcnas::graph
