/// SLO-aware admission: deadline tags, shed-oldest-past-deadline under
/// overload, expiry-while-queued shedding, and the typed RejectReason
/// surfaced on RejectedError — the admission policy state machine of
/// DESIGN.md §13.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "dcnas/serve/batcher.hpp"

namespace dcnas::serve {
namespace {

using std::chrono::steady_clock;
using ms = std::chrono::milliseconds;
using us = std::chrono::microseconds;

Tensor image(float fill = 0.0f) { return Tensor::full({2, 4, 4}, fill); }

BatchPolicy policy(std::int64_t max_batch, ms delay,
                   std::size_t capacity = 1024) {
  BatchPolicy p;
  p.max_batch = max_batch;
  p.max_delay = delay;
  p.queue_capacity = capacity;
  return p;
}

RejectReason reason_of(std::future<Tensor>& future) {
  try {
    future.get();
  } catch (const RejectedError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "future did not fail with RejectedError";
  return RejectReason::kShutdown;
}

TEST(AdmissionTest, RejectReasonsDistinguishShutdownFromOverload) {
  DynamicBatcher batcher(policy(8, ms(60000), 1));
  batcher.enqueue("m", image());
  try {
    batcher.enqueue("m", image());
    FAIL() << "expected overload rejection";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
    EXPECT_TRUE(e.retryable());
  }
  batcher.close();
  try {
    batcher.enqueue("m", image());
    FAIL() << "expected shutdown rejection";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    EXPECT_FALSE(e.retryable());
  }
}

// Overload with past-deadline requests pending: the *oldest* expired
// request is shed (future fails with kShedOverload) and the newcomer is
// admitted; shed order follows admission age. Untagged requests are never
// shed, so once only they remain the newcomer is rejected with kQueueFull.
TEST(AdmissionTest, OverloadShedsOldestPastDeadlineFirst) {
  DynamicBatcher batcher(policy(64, ms(60000), 3));
  auto f_old = batcher.enqueue("m", image(1.0f), us(1000));
  std::this_thread::sleep_for(ms(2));  // stagger admission times
  auto f_mid = batcher.enqueue("m", image(2.0f), us(1000));
  auto f_solid = batcher.enqueue("m", image(3.0f));  // untagged
  std::this_thread::sleep_for(ms(5));                // both tagged expire
  ASSERT_EQ(batcher.pending(), 3u);

  batcher.enqueue("m", image(4.0f));  // sheds f_old
  EXPECT_EQ(reason_of(f_old), RejectReason::kShedOverload);
  EXPECT_EQ(f_mid.wait_for(ms(0)), std::future_status::timeout)
      << "younger expired request shed before the oldest";
  EXPECT_EQ(batcher.pending(), 3u);

  batcher.enqueue("m", image(5.0f));  // sheds f_mid
  EXPECT_EQ(reason_of(f_mid), RejectReason::kShedOverload);

  // Only the untagged request and the two fresh ones remain: nothing is
  // sheddable, so the queue-full rejection reappears.
  try {
    batcher.enqueue("m", image(6.0f));
    FAIL() << "expected queue-full rejection";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
  }
  EXPECT_EQ(f_solid.wait_for(ms(0)), std::future_status::timeout)
      << "untagged request must never be shed";
}

// A deadline that expires while the request queues is shed by the consumer
// — promptly (the consumer wakes at the earliest expiry, not the flush
// deadline) and without ever executing the request.
TEST(AdmissionTest, DeadlineExpiryDuringQueueingShedsPromptly) {
  DynamicBatcher batcher(policy(64, ms(60000)));
  auto doomed = batcher.enqueue("m", image(1.0f), ms(30));
  auto solid = batcher.enqueue("m", image(2.0f));

  std::thread consumer([&] {
    // Pops exactly one batch: the drain after close() hands over "solid".
    auto batch = batcher.next_batch();
    ASSERT_TRUE(batch);
    EXPECT_EQ(batch->size(), 1);
    batch->requests.front().promise.set_value(Tensor::full({1, 2}, 9.0f));
    EXPECT_FALSE(batcher.next_batch().has_value());
  });

  // The shed must happen at the ~30ms expiry, far before the 60s flush
  // deadline — wait_for bounds how long the consumer may sit on it.
  ASSERT_EQ(doomed.wait_for(ms(5000)), std::future_status::ready);
  const auto t_shed = steady_clock::now();
  EXPECT_EQ(reason_of(doomed), RejectReason::kDeadlineExpired);
  EXPECT_EQ(batcher.pending(), 1u) << "solid request must survive the shed";

  batcher.close();
  consumer.join();
  EXPECT_FLOAT_EQ(solid.get()[0], 9.0f);
  (void)t_shed;
}

// A request whose deadline has not expired is executed normally — the tag
// alone must not change the happy path.
TEST(AdmissionTest, UnexpiredDeadlineServesNormally) {
  DynamicBatcher batcher(policy(1, ms(0)));
  auto future = batcher.enqueue("m", image(3.0f), ms(60000));
  auto batch = batcher.next_batch();
  ASSERT_TRUE(batch);
  ASSERT_EQ(batch->size(), 1);
  EXPECT_TRUE(batch->requests.front().has_deadline());
  batch->requests.front().promise.set_value(Tensor::full({1, 2}, 7.0f));
  EXPECT_FLOAT_EQ(future.get()[0], 7.0f);
}

// Adversarial multi-model load: a sparse old queue, a full young queue, and
// expiring requests interleaved. The consumer must flush the full queue
// first, shed expired requests without executing them, and still answer
// every surviving request exactly once.
TEST(AdmissionTest, MultiModelAdversarialMix) {
  DynamicBatcher batcher(policy(3, ms(100)));
  auto a_sparse = batcher.enqueue("a", image(0.0f));
  auto a_doomed = batcher.enqueue("a", image(1.0f), us(500));
  std::vector<std::future<Tensor>> b_full;
  for (int i = 0; i < 3; ++i) {
    b_full.push_back(batcher.enqueue("b", image(float(10 + i))));
  }
  std::this_thread::sleep_for(ms(3));  // a_doomed expires

  // First pop: b's full batch (a's head is older but not full and not aged).
  auto first = batcher.next_batch();
  ASSERT_TRUE(first);
  EXPECT_EQ(first->model, "b");
  EXPECT_EQ(first->size(), 3);
  // a_doomed was shed during the pop, never handed to a consumer.
  EXPECT_EQ(reason_of(a_doomed), RejectReason::kDeadlineExpired);

  // Second pop: a's survivor after its delay deadline.
  auto second = batcher.next_batch();
  ASSERT_TRUE(second);
  EXPECT_EQ(second->model, "a");
  EXPECT_EQ(second->size(), 1);
  second->requests.front().promise.set_value(Tensor::full({1, 2}, 1.0f));
  EXPECT_FLOAT_EQ(a_sparse.get()[0], 1.0f);
  for (auto& req : first->requests) {
    req.promise.set_value(Tensor::full({1, 2}, 2.0f));
  }
  for (auto& f : b_full) EXPECT_FLOAT_EQ(f.get()[0], 2.0f);
  EXPECT_EQ(batcher.pending(), 0u);
}

// Merge failures (e.g. bad_alloc allocating the batch tensor) are answered
// through the popped requests' futures; the consumer keeps draining later
// work instead of leaking the exception into its worker loop.
TEST(AdmissionTest, MergeFailureAnswersFuturesAndKeepsDraining) {
  DynamicBatcher batcher(policy(2, ms(0)));
  int calls = 0;
  batcher.set_merge_hook_for_testing([&calls](const Batch&) {
    if (++calls == 1) throw std::bad_alloc();
  });
  auto f1 = batcher.enqueue("m", image(1.0f));
  auto f2 = batcher.enqueue("m", image(2.0f));
  auto f3 = batcher.enqueue("m", image(3.0f));

  // One next_batch call: the first popped batch fails its merge (futures
  // answered with bad_alloc), then the same call pops and merges the rest.
  auto batch = batcher.next_batch();
  ASSERT_TRUE(batch);
  EXPECT_EQ(batch->size(), 1);
  EXPECT_THROW(f1.get(), std::bad_alloc);
  EXPECT_THROW(f2.get(), std::bad_alloc);
  batch->requests.front().promise.set_value(Tensor::full({1, 2}, 5.0f));
  EXPECT_FLOAT_EQ(f3.get()[0], 5.0f);
}

}  // namespace
}  // namespace dcnas::serve
