#include "dcnas/serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "serve_test_util.hpp"

namespace dcnas::serve {
namespace {

using ms = std::chrono::milliseconds;

std::shared_ptr<ModelRegistry> make_registry(const std::string& name = "m") {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model(name, testing::make_executor());
  return registry;
}

ServerOptions options(std::size_t workers, std::int64_t max_batch, ms delay,
                      std::size_t capacity = 1024) {
  ServerOptions o;
  o.num_workers = workers;
  o.batch.max_batch = max_batch;
  o.batch.max_delay = delay;
  o.batch.queue_capacity = capacity;
  return o;
}

// Acceptance (a): N threads x M requests through the server produce
// bit-identical outputs to a direct run of the executor the server serves
// from — the compiled plan by default (the op-by-op GraphExecutor when
// ServerOptions::use_plans is off).
TEST(ServerTest, ConcurrentRequestsMatchDirectExecutionBitExactly) {
  auto registry = make_registry();
  const ModelSnapshot snap = registry->snapshot("m");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  constexpr int kTotal = kThreads * kPerThread;
  Rng rng(123);
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int i = 0; i < kTotal; ++i) {
    inputs.push_back(testing::make_image(rng));
    expected.push_back(snap.plan->run(inputs.back()));
  }

  Server server(registry, options(4, 8, ms(2)));
  std::vector<std::future<Tensor>> futures(kTotal);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int idx = t * kPerThread + i;
        futures[static_cast<std::size_t>(idx)] =
            server.submit("m", inputs[static_cast<std::size_t>(idx)]);
      }
    });
  }
  for (auto& th : submitters) th.join();

  for (int i = 0; i < kTotal; ++i) {
    const Tensor got = futures[static_cast<std::size_t>(i)].get();
    const Tensor& want = expected[static_cast<std::size_t>(i)];
    ASSERT_TRUE(got.same_shape(want)) << "request " << i;
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(got[j], want[j]) << "request " << i << " element " << j;
    }
  }
  EXPECT_EQ(server.metrics().request_count("m"), kTotal);
  EXPECT_EQ(server.metrics().error_count("m"), 0);
}

// The op-by-op fallback keeps the same contract: with use_plans off,
// served outputs are bit-identical to direct GraphExecutor::run.
TEST(ServerTest, GraphPathMatchesDirectExecutionBitExactly) {
  auto registry = make_registry();
  const auto exec = registry->get("m");
  ServerOptions o = options(2, 4, ms(2));
  o.use_plans = false;
  Server server(registry, o);

  Rng rng(321);
  for (int i = 0; i < 8; ++i) {
    const Tensor input = testing::make_image(rng);
    const Tensor want = exec->run(input);
    const Tensor got = server.submit("m", input).get();
    ASSERT_TRUE(got.same_shape(want)) << "request " << i;
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(got[j], want[j]) << "request " << i << " element " << j;
    }
  }
}

TEST(ServerTest, UnknownModelSurfacesErrorOnFuture) {
  Server server(make_registry(), options(1, 1, ms(0)));
  Rng rng(5);
  auto future = server.submit("ghost", testing::make_image(rng));
  EXPECT_THROW(future.get(), InvalidArgument);
  EXPECT_EQ(server.metrics().error_count("ghost"), 1);
  EXPECT_EQ(server.metrics().request_count("ghost"), 0);
}

// Acceptance (c) + (d): a full queue rejects instead of growing, and
// shutdown drains every accepted request without loss. The huge max_batch /
// max_delay pin all accepted requests in the queue until shutdown's drain,
// which ignores the delay — so completing well before the 60s deadline
// proves the drain path, not the timer, answered them.
TEST(ServerTest, BackpressureThenGracefulDrainOnShutdown) {
  auto registry = make_registry();
  const auto plan = registry->snapshot("m").plan;
  constexpr std::size_t kCapacity = 6;
  Server server(registry, options(2, 1024, ms(60000), kCapacity));

  Rng rng(77);
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    inputs.push_back(testing::make_image(rng));
    futures.push_back(server.submit("m", inputs.back()));
  }
  EXPECT_THROW(server.submit("m", testing::make_image(rng)), RejectedError);
  EXPECT_EQ(server.metrics().error_count("m"), 1);

  const auto t0 = std::chrono::steady_clock::now();
  server.shutdown();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, ms(30000));
  EXPECT_EQ(server.pending(), 0u);

  for (std::size_t i = 0; i < kCapacity; ++i) {
    const Tensor got = futures[i].get();
    const Tensor want = plan->run(inputs[i]);
    for (std::int64_t j = 0; j < want.numel(); ++j) ASSERT_EQ(got[j], want[j]);
  }
  EXPECT_EQ(server.metrics().request_count("m"),
            static_cast<std::int64_t>(kCapacity));
}

TEST(ServerTest, SubmitAfterShutdownRejects) {
  Server server(make_registry(), options(1, 1, ms(0)));
  server.shutdown();
  server.shutdown();  // idempotent
  Rng rng(3);
  EXPECT_THROW(server.submit("m", testing::make_image(rng)), RejectedError);
}

TEST(ServerTest, MetricsTrackBatchesAndLatencies) {
  auto registry = make_registry();
  // One worker + a small aging window so several requests coalesce.
  Server server(registry, options(1, 8, ms(20)));
  Rng rng(31);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(server.submit("m", testing::make_image(rng)));
  }
  for (auto& f : futures) f.get();
  server.shutdown();

  EXPECT_EQ(server.metrics().request_count("m"), 24);
  const auto hist = server.metrics().batch_histogram("m");
  std::int64_t histogram_total = 0;
  for (const auto& [size, count] : hist) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 8);
    histogram_total += size * count;
  }
  EXPECT_EQ(histogram_total, 24);

  const LatencySummary lat = server.metrics().latency_summary("m");
  EXPECT_EQ(lat.count, 24u);
  EXPECT_GT(lat.p50_ms, 0.0);
  EXPECT_LE(lat.p50_ms, lat.p95_ms);
  EXPECT_LE(lat.p95_ms, lat.p99_ms);

  const std::string report = server.stats_report();
  EXPECT_NE(report.find("m"), std::string::npos);
}

TEST(ServerTest, HotSwapWhileServingUsesNewModelForLaterRequests) {
  auto registry = make_registry();
  Server server(registry, options(2, 4, ms(1)));
  Rng rng(41);
  const Tensor probe = testing::make_image(rng);
  const Tensor before = server.submit("m", probe).get();

  registry->register_model("m", testing::make_executor(99));
  const Tensor after = server.submit("m", probe).get();
  bool identical = true;
  for (std::int64_t j = 0; j < before.numel(); ++j) {
    if (before[j] != after[j]) identical = false;
  }
  EXPECT_FALSE(identical) << "post-swap requests must hit the new weights";
}

}  // namespace
}  // namespace dcnas::serve
