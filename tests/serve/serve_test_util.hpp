#pragma once
/// Shared fixture helpers for the serve tests: a small trained-ish model
/// (random init, BN statistics settled by a few training-mode forwards)
/// exported to a GraphExecutor at 24px, matching the graph-layer tests.

#include <memory>

#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/executor.hpp"
#include "dcnas/nn/resnet.hpp"

namespace dcnas::serve::testing {

inline constexpr std::int64_t kChannels = 5;
inline constexpr std::int64_t kImageSize = 24;

/// Builds a ready executor for the small test architecture; \p seed varies
/// the weights so distinct models produce distinct outputs.
inline graph::GraphExecutor make_executor(unsigned seed = 21) {
  nn::ResNetConfig config = nn::ResNetConfig::baseline(kChannels);
  config.init_width = 32;
  config.conv1_kernel = 3;
  config.conv1_padding = 1;
  Rng rng(seed);
  nn::ConfigurableResNet model(config, rng);
  for (int i = 0; i < 2; ++i) {
    const Tensor x = Tensor::rand_uniform({4, kChannels, kImageSize, kImageSize},
                                          rng, -1.0f, 1.0f);
    model.forward(x);
  }
  model.set_training(false);
  return graph::GraphExecutor(graph::build_resnet_graph(config, kImageSize),
                              model);
}

/// One random single-image input, shaped (1, C, H, W).
inline Tensor make_image(Rng& rng) {
  return Tensor::rand_uniform({1, kChannels, kImageSize, kImageSize}, rng,
                              -1.0f, 1.0f);
}

}  // namespace dcnas::serve::testing
