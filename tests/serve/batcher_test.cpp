#include "dcnas/serve/batcher.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace dcnas::serve {
namespace {

using std::chrono::steady_clock;
using ms = std::chrono::milliseconds;

Tensor image(float fill = 0.0f) {
  return Tensor::full({2, 4, 4}, fill);
}

BatchPolicy policy(std::int64_t max_batch, ms delay,
                   std::size_t capacity = 1024) {
  BatchPolicy p;
  p.max_batch = max_batch;
  p.max_delay = delay;
  p.queue_capacity = capacity;
  return p;
}

TEST(BatchPolicyTest, ValidatesBounds) {
  EXPECT_THROW(DynamicBatcher(policy(0, ms(1))), InvalidArgument);
  EXPECT_THROW(DynamicBatcher(policy(1, ms(-1))), InvalidArgument);
  EXPECT_THROW(DynamicBatcher(policy(1, ms(1), 0)), InvalidArgument);
}

TEST(DynamicBatcherTest, FullBatchReleasesWithoutWaitingForDelay) {
  // max_delay is deliberately enormous: if pop waited for it the test
  // would time out, so a prompt return proves the max-batch trigger.
  DynamicBatcher batcher(policy(4, ms(60000)));
  for (int i = 0; i < 8; ++i) batcher.enqueue("m", image(float(i)));
  const auto t0 = steady_clock::now();
  const auto first = batcher.next_batch();
  const auto second = batcher.next_batch();
  const auto elapsed = steady_clock::now() - t0;
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->size(), 4);
  EXPECT_EQ(second->size(), 4);
  EXPECT_LT(elapsed, ms(10000));
  // Admission order is preserved through the merge.
  EXPECT_EQ(first->input.dim(0), 4);
  EXPECT_FLOAT_EQ(first->input[0], 0.0f);
  EXPECT_FLOAT_EQ(second->input[0], 4.0f);
}

TEST(DynamicBatcherTest, MaxDelayReleasesPartialBatch) {
  DynamicBatcher batcher(policy(64, ms(50)));
  const auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) batcher.enqueue("m", image());
  const auto batch = batcher.next_batch();
  const auto elapsed = steady_clock::now() - t0;
  ASSERT_TRUE(batch);
  EXPECT_EQ(batch->size(), 3);
  // The deadline is admitted+50ms and admission happened after t0, so the
  // wait must span at least the full delay (minus clock granularity).
  EXPECT_GE(elapsed, ms(49));
}

TEST(DynamicBatcherTest, NeverExceedsMaxBatch) {
  DynamicBatcher batcher(policy(8, ms(0)));
  for (int i = 0; i < 21; ++i) batcher.enqueue("m", image());
  std::int64_t popped = 0;
  while (popped < 21) {
    const auto batch = batcher.next_batch();
    ASSERT_TRUE(batch);
    EXPECT_LE(batch->size(), 8);
    popped += batch->size();
  }
  EXPECT_EQ(popped, 21);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(DynamicBatcherTest, BackpressureRejectsWhenFull) {
  DynamicBatcher batcher(policy(8, ms(60000), 4));
  for (int i = 0; i < 4; ++i) batcher.enqueue("m", image());
  EXPECT_THROW(batcher.enqueue("m", image()), RejectedError);
  EXPECT_EQ(batcher.pending(), 4u);  // rejected request was not buffered
}

TEST(DynamicBatcherTest, CloseRejectsNewWorkButDrainsPending) {
  DynamicBatcher batcher(policy(2, ms(60000)));
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(batcher.enqueue("m", image()));
  batcher.close();
  EXPECT_THROW(batcher.enqueue("m", image()), RejectedError);
  // Draining ignores max_delay: everything pending pops immediately.
  std::int64_t drained = 0;
  while (const auto batch = batcher.next_batch()) {
    EXPECT_LE(batch->size(), 2);
    drained += batch->size();
  }
  EXPECT_EQ(drained, 5);
  EXPECT_FALSE(batcher.next_batch().has_value());  // stays drained
}

TEST(DynamicBatcherTest, BatchesNeverMixModels) {
  DynamicBatcher batcher(policy(8, ms(0)));
  for (int i = 0; i < 3; ++i) {
    batcher.enqueue("a", image());
    batcher.enqueue("b", image());
  }
  std::map<std::string, std::int64_t> counts;
  for (int pops = 0; pops < 2; ++pops) {
    const auto batch = batcher.next_batch();
    ASSERT_TRUE(batch);
    counts[batch->model] += batch->size();
  }
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 3);
}

TEST(DynamicBatcherTest, ShapeChangeSplitsBatch) {
  DynamicBatcher batcher(policy(8, ms(0)));
  batcher.enqueue("m", image());
  batcher.enqueue("m", image());
  batcher.enqueue("m", Tensor::full({2, 8, 8}, 1.0f));
  const auto first = batcher.next_batch();
  const auto second = batcher.next_batch();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->size(), 2);
  EXPECT_EQ(second->size(), 1);
  EXPECT_EQ(second->input.dim(2), 8);
}

TEST(DynamicBatcherTest, AcceptsSqueezableBatchDimAndRejectsOthers) {
  DynamicBatcher batcher(policy(1, ms(0)));
  batcher.enqueue("m", Tensor::full({1, 2, 4, 4}, 1.0f));  // (1,C,H,W) ok
  EXPECT_THROW(batcher.enqueue("m", Tensor::full({2, 2, 4, 4}, 1.0f)),
               InvalidArgument);
  EXPECT_THROW(batcher.enqueue("m", Tensor::full({4, 4}, 1.0f)),
               InvalidArgument);
  const auto batch = batcher.next_batch();
  ASSERT_TRUE(batch);
  EXPECT_EQ(batch->input.dim(0), 1);
}

// PR 9 starvation regression (single consumer, two models): a *full* batch
// for model "b" must flush immediately even though model "a" holds the
// oldest head request and is still inside its (enormous) delay window. The
// pre-fix batcher only ever inspected the queue with the oldest head, so
// b's full batch waited out a's max_delay — this test times out on that
// code and passes post-fix.
TEST(DynamicBatcherTest, FullQueueFlushesAheadOfOlderSparseQueue) {
  DynamicBatcher batcher(policy(4, ms(60000)));
  batcher.enqueue("a", image());  // older, sparse: 1 of 4
  for (int i = 0; i < 4; ++i) batcher.enqueue("b", image(float(i)));
  const auto t0 = steady_clock::now();
  const auto batch = batcher.next_batch();  // single consumer
  const auto elapsed = steady_clock::now() - t0;
  ASSERT_TRUE(batch);
  EXPECT_EQ(batch->model, "b");
  EXPECT_EQ(batch->size(), 4);
  EXPECT_LT(elapsed, ms(10000));
  EXPECT_EQ(batcher.pending(), 1u);  // "a" still waiting, not lost
}

// With several full queues, the one whose head is oldest flushes first —
// the full-queue fast path must not introduce unfairness among full queues.
TEST(DynamicBatcherTest, OldestFullQueueFlushesFirst) {
  DynamicBatcher batcher(policy(2, ms(60000)));
  for (int i = 0; i < 2; ++i) batcher.enqueue("x", image());
  for (int i = 0; i < 2; ++i) batcher.enqueue("y", image());
  const auto first = batcher.next_batch();
  const auto second = batcher.next_batch();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->model, "x");
  EXPECT_EQ(second->model, "y");
}

TEST(DynamicBatcherTest, FutureResolvesWhenPromiseAnswered) {
  DynamicBatcher batcher(policy(1, ms(0)));
  auto future = batcher.enqueue("m", image(3.0f));
  auto batch = batcher.next_batch();
  ASSERT_TRUE(batch);
  batch->requests.front().promise.set_value(Tensor::full({1, 2}, 7.0f));
  const Tensor out = future.get();
  EXPECT_FLOAT_EQ(out[0], 7.0f);
}

}  // namespace
}  // namespace dcnas::serve
