/// Wire protocol: codec round-trips, an external client driving the server
/// over a real socket (the PR-9 acceptance integration test), typed reject
/// statuses crossing the wire, and the negative/fuzz suite — bad magic,
/// truncated frames, oversized length prefixes, byte-flipped requests.

#include "dcnas/serve/wire.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <vector>

#include "serve_test_util.hpp"

namespace dcnas::serve {
namespace {

using ms = std::chrono::milliseconds;

std::shared_ptr<ModelRegistry> make_registry() {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model("m", testing::make_executor());
  return registry;
}

ServerOptions quick_options() {
  ServerOptions o;
  o.num_replicas = 2;
  o.num_workers = 2;
  o.batch.max_batch = 4;
  o.batch.max_delay = ms(2);
  return o;
}

std::string unique_socket_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dcnas_wire_test_") + tag + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

/// Raw unix-domain connection for protocol-violation tests: no framing, no
/// validation — just bytes on the socket.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  void send_bytes(const void* data, std::size_t n) {
    ASSERT_EQ(::send(fd_, data, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
  }
  void send_frame(const std::vector<std::uint8_t>& payload) {
    const auto length = static_cast<std::uint32_t>(payload.size());
    send_bytes(&length, sizeof(length));
    send_bytes(payload.data(), payload.size());
  }
  void close_write() { ::shutdown(fd_, SHUT_WR); }

  /// Reads one response frame; empty vector on EOF.
  std::vector<std::uint8_t> read_frame() {
    std::uint32_t length = 0;
    if (!read_exact(&length, sizeof(length))) return {};
    std::vector<std::uint8_t> payload(length);
    if (length > 0 && !read_exact(payload.data(), length)) return {};
    return payload;
  }
  bool at_eof() {
    std::uint8_t byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  bool read_exact(void* data, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, p + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<std::size_t>(r);
    }
    return true;
  }
  int fd_ = -1;
};

TEST(WireCodecTest, RequestRoundTripsBitExactly) {
  Rng rng(8);
  WireRequest request;
  request.model = "drainage";
  request.input = testing::make_image(rng);
  request.deadline_us = 1234567;
  const auto bytes = encode_request(request);
  const WireRequest back = decode_request(bytes.data(), bytes.size());
  EXPECT_EQ(back.model, request.model);
  EXPECT_EQ(back.deadline_us, request.deadline_us);
  ASSERT_TRUE(back.input.same_shape(request.input));
  for (std::int64_t j = 0; j < request.input.numel(); ++j) {
    ASSERT_EQ(back.input[j], request.input[j]);
  }
}

TEST(WireCodecTest, ResponseRoundTripsOkAndError) {
  WireResponse ok;
  ok.status = WireStatus::kOk;
  ok.output = Tensor::full({2, 3}, 1.5f);
  const auto ok_bytes = encode_response(ok);
  const WireResponse ok_back = decode_response(ok_bytes.data(), ok_bytes.size());
  EXPECT_EQ(ok_back.status, WireStatus::kOk);
  ASSERT_TRUE(ok_back.output.same_shape(ok.output));
  for (std::int64_t j = 0; j < ok.output.numel(); ++j) {
    ASSERT_EQ(ok_back.output[j], ok.output[j]);
  }

  WireResponse err;
  err.status = WireStatus::kQueueFull;
  err.message = "queue full on every replica";
  const auto err_bytes = encode_response(err);
  const WireResponse err_back =
      decode_response(err_bytes.data(), err_bytes.size());
  EXPECT_EQ(err_back.status, WireStatus::kQueueFull);
  EXPECT_EQ(err_back.message, err.message);
}

TEST(WireCodecTest, DecodeRejectsMalformedFrames) {
  Rng rng(9);
  WireRequest request;
  request.model = "m";
  request.input = testing::make_image(rng);
  const auto good = encode_request(request);

  // Bad magic.
  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_request(bad_magic.data(), bad_magic.size()),
               InvalidArgument);
  // Unsupported version.
  auto bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_THROW(decode_request(bad_version.data(), bad_version.size()),
               InvalidArgument);
  // Truncations at every prefix length must throw, never crash.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(decode_request(good.data(), n), InvalidArgument)
        << "prefix of " << n << " bytes decoded";
  }
  // Trailing garbage after the tensor payload.
  auto trailing = good;
  trailing.push_back(0xAB);
  EXPECT_THROW(decode_request(trailing.data(), trailing.size()),
               InvalidArgument);
  // Empty frame.
  EXPECT_THROW(decode_request(good.data(), 0), InvalidArgument);
}

// Fuzz: flipping any single byte of a valid request must yield either a
// clean decode (data bytes) or InvalidArgument (structure bytes) — never a
// crash or out-of-bounds read (run under ASan in CI).
TEST(WireCodecTest, SingleByteFlipsNeverCrashTheDecoder) {
  Rng rng(10);
  WireRequest request;
  request.model = "drainage";
  request.input = Tensor::rand_uniform({5, 8, 8}, rng, -1.0f, 1.0f);
  request.deadline_us = 42;
  const auto good = encode_request(request);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (const std::uint8_t flip :
         {std::uint8_t(0x01), std::uint8_t(0x80), std::uint8_t(0xFF)}) {
      auto mutated = good;
      mutated[i] ^= flip;
      try {
        (void)decode_request(mutated.data(), mutated.size());
      } catch (const InvalidArgument&) {
        ++rejected;
      }
    }
  }
  // Header/structure mutations must actually be caught, not silently
  // accepted — the exact count depends on layout, but many must reject.
  EXPECT_GT(rejected, 16u);
}

// Acceptance (d): an external client drives the server over the wire
// protocol and gets bit-exact results — unix-domain socket path.
TEST(WireServerTest, UnixSocketRoundTripMatchesDirectExecution) {
  auto registry = make_registry();
  const auto plan = registry->snapshot("m").plan;
  Server server(registry, quick_options());
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("unix");
  WireServer wire(server, wopt);

  WireClient client = WireClient::connect_unix(wopt.unix_path);
  Rng rng(77);
  for (int i = 0; i < 8; ++i) {
    const Tensor input = testing::make_image(rng);
    const Tensor got = client.infer("m", input);
    const Tensor want = plan->run(input);
    ASSERT_TRUE(got.same_shape(want)) << "request " << i;
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(got[j], want[j]) << "request " << i << " element " << j;
    }
  }
  client.close();
  wire.stop();
  EXPECT_FALSE(std::filesystem::exists(wopt.unix_path))
      << "socket file must be unlinked on stop";
}

// Same contract over TCP loopback with an ephemeral port.
TEST(WireServerTest, TcpRoundTripMatchesDirectExecution) {
  auto registry = make_registry();
  const auto plan = registry->snapshot("m").plan;
  Server server(registry, quick_options());
  WireServer wire(server, WireServerOptions{});  // tcp_port 0 = ephemeral
  ASSERT_NE(wire.port(), 0);

  WireClient client = WireClient::connect_tcp("127.0.0.1", wire.port());
  Rng rng(78);
  const Tensor input = testing::make_image(rng);
  const Tensor got = client.infer("m", input);
  const Tensor want = plan->run(input);
  for (std::int64_t j = 0; j < want.numel(); ++j) ASSERT_EQ(got[j], want[j]);
}

// Typed rejections cross the wire losslessly: the status byte reconstructs
// the same RejectReason (and retryability) the in-process caller would see.
TEST(WireServerTest, RejectStatusesCrossTheWireTyped) {
  auto registry = make_registry();
  ServerOptions o = quick_options();
  o.num_replicas = 1;
  o.num_workers = 1;
  o.batch.max_batch = 1024;
  o.batch.max_delay = ms(60000);  // pin queued work: deadline shed must fire
  Server server(registry, o);
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("typed");
  WireServer wire(server, wopt);
  WireClient client = WireClient::connect_unix(wopt.unix_path);
  Rng rng(5);

  // Deadline shed: tagged 5ms, queue pinned for 60s.
  const WireResponse shed = client.infer_raw("m", testing::make_image(rng),
                                             /*deadline_us=*/5000);
  EXPECT_EQ(shed.status, WireStatus::kDeadlineExpired);

  // Shutdown: typed, non-retryable, reconstructed by infer().
  server.shutdown();
  const WireResponse gone = client.infer_raw("m", testing::make_image(rng));
  EXPECT_EQ(gone.status, WireStatus::kShutdown);
  try {
    client.infer("m", testing::make_image(rng));
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    EXPECT_FALSE(e.retryable());
  }
}

// An unknown model is a well-formed frame the server cannot serve: the
// status is kBadRequest (not a connection drop) and infer() maps it back to
// InvalidArgument.
TEST(WireServerTest, UnknownModelIsBadRequestNotDisconnect) {
  auto registry = make_registry();
  Server server(registry, quick_options());
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("ghost");
  WireServer wire(server, wopt);
  WireClient client = WireClient::connect_unix(wopt.unix_path);
  Rng rng(5);
  const WireResponse ghost = client.infer_raw("ghost", testing::make_image(rng));
  EXPECT_EQ(ghost.status, WireStatus::kBadRequest);
  EXPECT_THROW(client.infer("ghost", testing::make_image(rng)),
               InvalidArgument);
  // The same connection still serves known models afterwards.
  EXPECT_NO_THROW(client.infer("m", testing::make_image(rng)));
}

// Bad magic bytes: the server answers kBadRequest, closes the connection,
// and keeps serving well-formed clients.
TEST(WireServerTest, BadMagicGetsBadRequestThenClose) {
  auto registry = make_registry();
  Server server(registry, quick_options());
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("badmagic");
  WireServer wire(server, wopt);

  RawConn raw(wopt.unix_path);
  ASSERT_TRUE(raw.ok());
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF,
                                             0x01, 0x01, 0x00, 0x00};
  raw.send_frame(garbage);
  const auto frame = raw.read_frame();
  ASSERT_FALSE(frame.empty()) << "expected a kBadRequest response frame";
  const WireResponse response = decode_response(frame.data(), frame.size());
  EXPECT_EQ(response.status, WireStatus::kBadRequest);
  EXPECT_TRUE(raw.at_eof()) << "connection must close after a framing error";

  // The server survives: a fresh well-formed client still gets answers.
  WireClient client = WireClient::connect_unix(wopt.unix_path);
  Rng rng(6);
  EXPECT_NO_THROW(client.infer("m", testing::make_image(rng)));
}

// An oversized length prefix is a protocol error, not a 4 GiB allocation.
TEST(WireServerTest, OversizedLengthPrefixIsRejectedNotAllocated) {
  auto registry = make_registry();
  Server server(registry, quick_options());
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("oversized");
  WireServer wire(server, wopt);

  RawConn raw(wopt.unix_path);
  ASSERT_TRUE(raw.ok());
  const std::uint32_t huge = 0xFFFFFFFFu;
  raw.send_bytes(&huge, sizeof(huge));
  const auto frame = raw.read_frame();
  ASSERT_FALSE(frame.empty());
  const WireResponse response = decode_response(frame.data(), frame.size());
  EXPECT_EQ(response.status, WireStatus::kBadRequest);
  EXPECT_NE(response.message.find("oversized"), std::string::npos);
  EXPECT_TRUE(raw.at_eof());
}

// A frame that claims more bytes than the peer ever sends (peer closes
// mid-frame) is answered best-effort and dropped without hanging the server.
TEST(WireServerTest, TruncatedFrameClosesConnectionAndServerSurvives) {
  auto registry = make_registry();
  Server server(registry, quick_options());
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("truncated");
  WireServer wire(server, wopt);

  {
    RawConn raw(wopt.unix_path);
    ASSERT_TRUE(raw.ok());
    const std::uint32_t claimed = 100;
    raw.send_bytes(&claimed, sizeof(claimed));
    const std::uint8_t partial[10] = {};
    raw.send_bytes(partial, sizeof(partial));
    raw.close_write();  // EOF mid-frame
    const auto frame = raw.read_frame();
    if (!frame.empty()) {  // best-effort response may or may not arrive
      EXPECT_EQ(decode_response(frame.data(), frame.size()).status,
                WireStatus::kBadRequest);
    }
  }
  WireClient client = WireClient::connect_unix(wopt.unix_path);
  Rng rng(7);
  EXPECT_NO_THROW(client.infer("m", testing::make_image(rng)));
}

// stop() while clients hold open connections: handlers are unblocked and
// joined, later requests on the dead socket fail cleanly client-side.
TEST(WireServerTest, StopUnblocksIdleConnections) {
  auto registry = make_registry();
  Server server(registry, quick_options());
  WireServerOptions wopt;
  wopt.unix_path = unique_socket_path("stop");
  auto wire = std::make_unique<WireServer>(server, wopt);
  WireClient client = WireClient::connect_unix(wopt.unix_path);
  Rng rng(12);
  EXPECT_NO_THROW(client.infer("m", testing::make_image(rng)));
  wire->stop();  // must not hang on the idle open connection
  wire.reset();
  EXPECT_THROW(client.infer("m", testing::make_image(rng)), Error);
}

}  // namespace
}  // namespace dcnas::serve
