/// ReplicaGroup behind Server: bit-exactness across replicas,
/// power-of-two-choices balance, spill-on-overflow, atomic hot-swap
/// propagation, worker merge-failure containment, and server-level SLO
/// shedding.

#include "dcnas/serve/replica.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "dcnas/serve/server.hpp"
#include "serve_test_util.hpp"

namespace dcnas::serve {
namespace {

using ms = std::chrono::milliseconds;

std::shared_ptr<ModelRegistry> make_registry(const std::string& name = "m") {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model(name, testing::make_executor());
  return registry;
}

ServerOptions options(std::size_t replicas, std::size_t workers,
                      std::int64_t max_batch, ms delay,
                      std::size_t capacity = 1024) {
  ServerOptions o;
  o.num_replicas = replicas;
  o.num_workers = workers;
  o.batch.max_batch = max_batch;
  o.batch.max_delay = delay;
  o.batch.queue_capacity = capacity;
  return o;
}

// Replication must be invisible to correctness: concurrent requests through
// a 3-replica server match direct plan execution bit-exactly regardless of
// which replica served them.
TEST(ReplicaGroupTest, MultiReplicaOutputsMatchDirectExecutionBitExactly) {
  auto registry = make_registry();
  const ModelSnapshot snap = registry->snapshot("m");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  constexpr int kTotal = kThreads * kPerThread;
  Rng rng(2024);
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int i = 0; i < kTotal; ++i) {
    inputs.push_back(testing::make_image(rng));
    expected.push_back(snap.plan->run(inputs.back()));
  }

  Server server(registry, options(3, 2, 4, ms(2)));
  ASSERT_EQ(server.replicas().size(), 3u);
  std::vector<std::future<Tensor>> futures(kTotal);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int idx = t * kPerThread + i;
        futures[static_cast<std::size_t>(idx)] =
            server.submit("m", inputs[static_cast<std::size_t>(idx)]);
      }
    });
  }
  for (auto& th : submitters) th.join();

  for (int i = 0; i < kTotal; ++i) {
    const Tensor got = futures[static_cast<std::size_t>(i)].get();
    const Tensor& want = expected[static_cast<std::size_t>(i)];
    ASSERT_TRUE(got.same_shape(want)) << "request " << i;
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      ASSERT_EQ(got[j], want[j]) << "request " << i << " element " << j;
    }
  }
  EXPECT_EQ(server.metrics().request_count("m"), kTotal);
}

// Power-of-two-choices keeps load spread: with execution pinned (huge
// max_batch + max_delay hold requests in the queues), routed requests must
// not pile onto one replica. Bounds are loose — p2c is randomized — but a
// broken router that always picks replica 0 fails them decisively.
TEST(ReplicaGroupTest, PowerOfTwoChoicesSpreadsPendingLoad) {
  auto registry = make_registry();
  Server server(registry, options(4, 1, 1024, ms(60000)));
  Rng rng(7);
  constexpr std::size_t kTotal = 32;
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < kTotal; ++i) {
    futures.push_back(server.submit("m", testing::make_image(rng)));
  }

  const auto depths = server.replicas().pending_per_replica();
  ASSERT_EQ(depths.size(), 4u);
  std::size_t total = 0, nonzero = 0, deepest = 0;
  for (const auto d : depths) {
    total += d;
    if (d > 0) ++nonzero;
    deepest = std::max(deepest, d);
  }
  EXPECT_EQ(total, kTotal);
  EXPECT_GE(nonzero, 2u) << "all requests landed on one replica";
  EXPECT_LE(deepest, kTotal - 8) << "routing is grossly imbalanced";

  server.shutdown();  // drain answers every pinned request
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

// Overflow spills: when the p2c pick is full, the other choice admits the
// request, so capacity is the *group's* capacity, not one replica's. Only
// when every choice is full does kQueueFull reach the caller.
TEST(ReplicaGroupTest, FullReplicaSpillsToSecondChoiceBeforeRejecting) {
  auto registry = make_registry();
  constexpr std::size_t kPerReplica = 2;
  Server server(registry, options(2, 1, 1024, ms(60000), kPerReplica));
  Rng rng(13);
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < 2 * kPerReplica; ++i) {
    futures.push_back(server.submit("m", testing::make_image(rng)));
  }
  const auto depths = server.replicas().pending_per_replica();
  EXPECT_EQ(depths[0], kPerReplica);
  EXPECT_EQ(depths[1], kPerReplica);
  try {
    server.submit("m", testing::make_image(rng));
    FAIL() << "expected rejection once every replica is full";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
  }
  server.shutdown();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

// Hot-swap propagates to *every* replica atomically: replicas hold no model
// state, so each post-swap request — whichever replica serves it — runs the
// new weights.
TEST(ReplicaGroupTest, HotSwapReachesAllReplicas) {
  auto registry = make_registry();
  Server server(registry, options(3, 1, 1, ms(0)));
  Rng rng(55);
  const Tensor probe = testing::make_image(rng);
  const Tensor before = server.submit("m", probe).get();

  registry->register_model("m", testing::make_executor(99));
  // Enough probes that all three replicas are overwhelmingly likely to have
  // served at least one; every single answer must use the new weights.
  for (int i = 0; i < 12; ++i) {
    const Tensor after = server.submit("m", probe).get();
    bool identical = true;
    for (std::int64_t j = 0; j < before.numel(); ++j) {
      if (before[j] != after[j]) identical = false;
    }
    EXPECT_FALSE(identical) << "request " << i << " served stale weights";
  }
}

// Satellite 3 regression: a merge failure (bad_alloc building the batch
// tensor) used to escape the worker into ThreadPool::wait_idle(), which
// Server::~Server calls — rethrowing during unwind and terminating the
// process. Now the failure is answered through the affected futures, the
// worker keeps serving, and destruction stays clean.
TEST(ReplicaGroupTest, MergeFailureAnswersFutureAndServerSurvives) {
  auto registry = make_registry();
  Server server(registry, options(1, 1, 1, ms(0)));
  int calls = 0;
  server.replicas().replica_for_testing(0).batcher_for_testing()
      .set_merge_hook_for_testing([&calls](const Batch&) {
        if (++calls == 1) throw std::bad_alloc();
      });
  Rng rng(17);
  auto doomed = server.submit("m", testing::make_image(rng));
  EXPECT_THROW(doomed.get(), std::bad_alloc);
  // The worker survived: the next request is served normally.
  const Tensor input = testing::make_image(rng);
  const Tensor got = server.submit("m", input).get();
  const Tensor want = registry->snapshot("m").plan->run(input);
  for (std::int64_t j = 0; j < want.numel(); ++j) ASSERT_EQ(got[j], want[j]);
  // ~Server at scope exit is the real assertion: pre-fix it terminates.
}

// Server-level SLO: a deadline-tagged request that cannot be served in time
// is shed with kDeadlineExpired instead of being executed late.
TEST(ReplicaGroupTest, DeadlineTaggedRequestShedsWhenItExpiresQueued) {
  auto registry = make_registry();
  // Huge max_batch + max_delay: the request would sit queued for 60s, so
  // the only way its future resolves quickly is the deadline shed.
  Server server(registry, options(1, 1, 1024, ms(60000)));
  Rng rng(23);
  auto future = server.submit("m", testing::make_image(rng), ms(20));
  ASSERT_EQ(future.wait_for(ms(10000)), std::future_status::ready);
  try {
    future.get();
    FAIL() << "expected the deadline shed to fail the future";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadlineExpired);
  }
  server.shutdown();
}

// Shutdown is idempotent and leaves later submissions rejected with the
// typed shutdown reason.
TEST(ReplicaGroupTest, ShutdownIsIdempotentAndTyped) {
  Server server(make_registry(), options(2, 1, 1, ms(0)));
  server.shutdown();
  server.shutdown();
  Rng rng(3);
  try {
    server.submit("m", testing::make_image(rng));
    FAIL() << "expected shutdown rejection";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    EXPECT_FALSE(e.retryable());
  }
}

}  // namespace
}  // namespace dcnas::serve
