#include "dcnas/serve/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "dcnas/analysis/diagnostic.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/plan/compiler.hpp"
#include "dcnas/serve/server.hpp"
#include "serve_test_util.hpp"

namespace dcnas::serve {
namespace {

TEST(ModelRegistryTest, RegisterThenGetRunsInference) {
  ModelRegistry registry;
  EXPECT_EQ(registry.register_model("dcnx", testing::make_executor()), 1);
  ASSERT_TRUE(registry.contains("dcnx"));
  const auto exec = registry.get("dcnx");
  Rng rng(7);
  const Tensor out = exec->run(testing::make_image(rng));
  EXPECT_EQ(out.dim(0), 1);
  EXPECT_EQ(out.dim(1), 2);  // binary classifier logits
}

TEST(ModelRegistryTest, GetUnknownThrows) {
  ModelRegistry registry;
  EXPECT_THROW(registry.get("missing"), InvalidArgument);
}

TEST(ModelRegistryTest, EmptyNameRejected) {
  ModelRegistry registry;
  EXPECT_THROW(registry.register_model("", testing::make_executor()),
               InvalidArgument);
}

TEST(ModelRegistryTest, HotSwapBumpsVersionAndKeepsOldInstanceAlive) {
  ModelRegistry registry;
  registry.register_model("m", testing::make_executor(1));
  const auto old_exec = registry.get("m");
  EXPECT_EQ(registry.register_model("m", testing::make_executor(2)), 2);
  EXPECT_EQ(registry.version("m"), 2);

  // The pre-swap handle still runs (workers mid-inference are unaffected),
  // and the registry now hands out the new weights.
  Rng rng(9);
  const Tensor x = testing::make_image(rng);
  const Tensor old_out = old_exec->run(x);
  const Tensor new_out = registry.get("m")->run(x);
  bool identical = true;
  for (std::int64_t i = 0; i < old_out.numel(); ++i) {
    if (old_out[i] != new_out[i]) identical = false;
  }
  EXPECT_FALSE(identical) << "swap should install different weights";
}

TEST(ModelRegistryTest, EvictRemovesAndVersionSurvives) {
  ModelRegistry registry;
  registry.register_model("m", testing::make_executor());
  EXPECT_TRUE(registry.evict("m"));
  EXPECT_FALSE(registry.evict("m"));
  EXPECT_FALSE(registry.contains("m"));
  EXPECT_EQ(registry.version("m"), 1);
  EXPECT_EQ(registry.register_model("m", testing::make_executor()), 2);
}

TEST(ModelRegistryTest, CapacityEvictsLeastRecentlyUsed) {
  ModelRegistry registry(2);
  registry.register_model("a", testing::make_executor(1));
  registry.register_model("b", testing::make_executor(2));
  registry.get("a");  // b is now LRU
  registry.register_model("c", testing::make_executor(3));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_FALSE(registry.contains("b"));
  EXPECT_TRUE(registry.contains("c"));
}

TEST(ModelRegistryTest, LoadsModelFileFromDisk) {
  graph::GraphExecutor exec = testing::make_executor();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_registry_test.dcnx")
          .string();
  graph::save_model(exec, path);

  ModelRegistry registry;
  registry.load("disk", path);
  Rng rng(4);
  const Tensor x = testing::make_image(rng);
  const Tensor a = exec.run(x);
  const Tensor b = registry.get("disk")->run(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, SnapshotCarriesPlanMatchingExecutor) {
  ModelRegistry registry;
  registry.register_model("m", testing::make_executor());
  const ModelSnapshot snap = registry.snapshot("m");
  ASSERT_NE(snap.exec, nullptr);
  ASSERT_NE(snap.plan, nullptr);
  EXPECT_EQ(snap.version, 1);
  Rng rng(11);
  const Tensor x = testing::make_image(rng);
  const Tensor via_graph = snap.exec->run(x);
  const Tensor via_plan = snap.plan->run(x);
  ASSERT_TRUE(via_graph.same_shape(via_plan));
  for (std::int64_t i = 0; i < via_graph.numel(); ++i) {
    EXPECT_NEAR(via_graph[i], via_plan[i], 1e-5);
  }
}

TEST(ModelRegistryTest, PlanCompilationCanBeDisabled) {
  ModelRegistry registry(0, /*compile_plans=*/false);
  EXPECT_FALSE(registry.compiles_plans());
  registry.register_model("m", testing::make_executor());
  const ModelSnapshot snap = registry.snapshot("m");
  ASSERT_NE(snap.exec, nullptr);
  EXPECT_EQ(snap.plan, nullptr);
}

TEST(ModelRegistryTest, HotSwapReplacesPlanAtomically) {
  ModelRegistry registry;
  registry.register_model("m", testing::make_executor(1));
  const ModelSnapshot before = registry.snapshot("m");
  registry.register_model("m", testing::make_executor(2));
  const ModelSnapshot after = registry.snapshot("m");

  // The swap installs a new plan alongside the new executor; the old pair
  // stays alive for in-flight holders but is no longer handed out.
  EXPECT_NE(before.plan, after.plan);
  EXPECT_NE(before.exec, after.exec);
  EXPECT_EQ(before.version, 1);
  EXPECT_EQ(after.version, 2);

  // The new plan serves the new weights, not the old ones.
  Rng rng(13);
  const Tensor x = testing::make_image(rng);
  const Tensor want = after.exec->run(x);
  const Tensor got = after.plan->run(x);
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_NEAR(want[i], got[i], 1e-5);
  }
}

TEST(ModelRegistryTest, EvictionDropsPlanWithExecutor) {
  ModelRegistry registry(2);
  registry.register_model("a", testing::make_executor(1));
  const ModelSnapshot held = registry.snapshot("a");  // keep v1 alive
  registry.register_model("b", testing::make_executor(2));
  registry.snapshot("b");  // a is now LRU
  registry.register_model("c", testing::make_executor(3));

  EXPECT_FALSE(registry.contains("a"));
  EXPECT_THROW(registry.snapshot("a"), InvalidArgument);
  // The held snapshot still works — eviction only drops the cache entry.
  Rng rng(15);
  const Tensor x = testing::make_image(rng);
  EXPECT_NO_THROW(held.plan->run(x));

  // Explicit eviction drops the derived plan too.
  ASSERT_TRUE(registry.evict("b"));
  EXPECT_THROW(registry.snapshot("b"), InvalidArgument);
}

/// The regression test from the issue: hot-swap weights while requests are
/// in flight and assert no request is ever answered by a stale plan — every
/// response must bitwise-match the output of one registered version, with
/// version-2 responses appearing once (and only once) the swap completes.
TEST(ModelRegistryTest, ConcurrentHotSwapNeverServesStalePlan) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model("m", testing::make_executor(1));

  // Reference outputs per version, computed through the same plan path the
  // server uses. Plan execution is deterministic, and max_batch = 1 below
  // keeps every request's row layout identical to these references, so the
  // comparison can be exact.
  Rng rng(17);
  const Tensor x = testing::make_image(rng);
  const Tensor ref_v1 = registry->snapshot("m").plan->run(x);
  ModelRegistry staging;
  staging.register_model("m", testing::make_executor(2));
  const Tensor ref_v2 = staging.snapshot("m").plan->run(x);

  auto matches = [](const Tensor& got, const Tensor& ref) {
    if (!got.same_shape(ref)) return false;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      if (got[i] != ref[i]) return false;
    }
    return true;
  };
  ASSERT_FALSE(matches(ref_v1, ref_v2)) << "versions must be distinguishable";

  ServerOptions options;
  options.num_workers = 2;
  options.batch.max_batch = 1;
  Server server(registry, options);

  std::atomic<bool> stop{false};
  std::atomic<int> v1_seen{0};
  std::atomic<int> v2_seen{0};
  std::atomic<int> stale_or_torn{0};

  // Background load racing with the swap. A request admitted before the
  // swap may legitimately be answered by version 1 even after it, so these
  // clients only check coherence: every response must exactly match one
  // registered version — never a torn executor/plan pairing.
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        Tensor out;
        try {
          out = server.submit("m", x).get();
        } catch (const RejectedError&) {
          continue;  // transient overload — not what this test is about
        }
        if (matches(out, ref_v1)) {
          ++v1_seen;
        } else if (matches(out, ref_v2)) {
          ++v2_seen;
        } else {
          ++stale_or_torn;
        }
      }
    });
  }

  // Let version 1 serve for a moment, then hot-swap under load.
  while (v1_seen.load() < 20) std::this_thread::yield();
  registry->register_model("m", testing::make_executor(2));

  // Every request submitted strictly after register_model returned must be
  // served by the new plan: its batch is dequeued after admission, and the
  // snapshot taken then can only observe version 2.
  for (int i = 0; i < 20; ++i) {
    Tensor out;
    try {
      out = server.submit("m", x).get();
    } catch (const RejectedError&) {
      --i;
      continue;
    }
    EXPECT_TRUE(matches(out, ref_v2))
        << "request admitted after the swap was served by the stale plan";
  }

  stop.store(true);
  for (auto& c : clients) c.join();
  server.shutdown();

  EXPECT_EQ(stale_or_torn.load(), 0)
      << "some response matched neither registered version";
  EXPECT_GT(v1_seen.load() + v2_seen.load(), 0);
}

// --- plan trust boundary: the registry must refuse byte-patched plans ------

/// Asserts that registering \p plan under a fresh name throws
/// InvalidArgument whose message names \p rule, and that nothing was
/// installed.
void expect_plan_refused(plan::CompiledPlan plan, const char* rule) {
  ModelRegistry registry;
  try {
    registry.register_model("patched", testing::make_executor(),
                            std::move(plan));
    FAIL() << "registry accepted a corrupted plan (" << rule << ")";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(rule), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(registry.contains("patched"));
  EXPECT_EQ(registry.version("patched"), 0);
}

TEST(ModelRegistryTest, AcceptsCallerSuppliedVerifiedPlan) {
  const graph::GraphExecutor exec = testing::make_executor();
  plan::CompiledPlan plan = plan::compile_plan(exec);
  ModelRegistry registry;
  EXPECT_EQ(registry.register_model("m", exec, std::move(plan)), 1);
  const ModelSnapshot snap = registry.snapshot("m");
  ASSERT_NE(snap.plan, nullptr);
  Rng rng(11);
  const Tensor x = testing::make_image(rng);
  const Tensor want = snap.exec->run(x);
  const Tensor got = snap.plan->run(x);
  ASSERT_TRUE(want.same_shape(got));
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-4) << i;
  }
}

TEST(ModelRegistryTest, RefusesPlanWithShiftedArenaOffsets) {
  plan::CompiledPlan plan = plan::compile_plan(testing::make_executor());
  // Shift a live slot onto its operand's offset: aliased at every batch.
  plan.slots[static_cast<std::size_t>(plan.steps[1].out)].offset =
      plan.slots[static_cast<std::size_t>(plan.steps[0].out)].offset;
  expect_plan_refused(std::move(plan), analysis::rules::kPlanAlias);
}

TEST(ModelRegistryTest, RefusesPlanWithForgedFusionProvenance) {
  plan::CompiledPlan plan = plan::compile_plan(testing::make_executor());
  auto it = std::find_if(
      plan.steps.begin(), plan.steps.end(),
      [](const plan::PlanStep& s) { return s.nodes.size() > 1; });
  ASSERT_NE(it, plan.steps.end());
  it->nodes.pop_back();  // claim the fused chain is shorter than it is
  expect_plan_refused(std::move(plan), analysis::rules::kPlanProvenance);
}

TEST(ModelRegistryTest, RefusesPlanWithReorderedSteps) {
  plan::CompiledPlan plan = plan::compile_plan(testing::make_executor());
  std::swap(plan.steps[0], plan.steps[1]);
  expect_plan_refused(std::move(plan), analysis::rules::kPlanStepOrder);
}

TEST(ModelRegistryTest, RefusedHotSwapLeavesResidentVersionServing) {
  const graph::GraphExecutor exec = testing::make_executor();
  ModelRegistry registry;
  registry.register_model("m", exec);
  const ModelSnapshot before = registry.snapshot("m");

  plan::CompiledPlan patched = plan::compile_plan(exec);
  patched.slots[0].offset = patched.arena_size;  // slot beyond the arena
  EXPECT_THROW(registry.register_model("m", exec, std::move(patched)),
               InvalidArgument);

  // The refused swap must not have bumped, evicted, or replaced anything.
  EXPECT_EQ(registry.version("m"), 1);
  const ModelSnapshot after = registry.snapshot("m");
  EXPECT_EQ(after.version, before.version);
  EXPECT_EQ(after.exec.get(), before.exec.get());
  EXPECT_EQ(after.plan.get(), before.plan.get());
}

TEST(ModelRegistryTest, NamesAreSorted) {
  ModelRegistry registry;
  registry.register_model("zeta", testing::make_executor(1));
  registry.register_model("alpha", testing::make_executor(2));
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace dcnas::serve
