#include "dcnas/serve/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dcnas/graph/model_file.hpp"
#include "serve_test_util.hpp"

namespace dcnas::serve {
namespace {

TEST(ModelRegistryTest, RegisterThenGetRunsInference) {
  ModelRegistry registry;
  EXPECT_EQ(registry.register_model("dcnx", testing::make_executor()), 1);
  ASSERT_TRUE(registry.contains("dcnx"));
  const auto exec = registry.get("dcnx");
  Rng rng(7);
  const Tensor out = exec->run(testing::make_image(rng));
  EXPECT_EQ(out.dim(0), 1);
  EXPECT_EQ(out.dim(1), 2);  // binary classifier logits
}

TEST(ModelRegistryTest, GetUnknownThrows) {
  ModelRegistry registry;
  EXPECT_THROW(registry.get("missing"), InvalidArgument);
}

TEST(ModelRegistryTest, EmptyNameRejected) {
  ModelRegistry registry;
  EXPECT_THROW(registry.register_model("", testing::make_executor()),
               InvalidArgument);
}

TEST(ModelRegistryTest, HotSwapBumpsVersionAndKeepsOldInstanceAlive) {
  ModelRegistry registry;
  registry.register_model("m", testing::make_executor(1));
  const auto old_exec = registry.get("m");
  EXPECT_EQ(registry.register_model("m", testing::make_executor(2)), 2);
  EXPECT_EQ(registry.version("m"), 2);

  // The pre-swap handle still runs (workers mid-inference are unaffected),
  // and the registry now hands out the new weights.
  Rng rng(9);
  const Tensor x = testing::make_image(rng);
  const Tensor old_out = old_exec->run(x);
  const Tensor new_out = registry.get("m")->run(x);
  bool identical = true;
  for (std::int64_t i = 0; i < old_out.numel(); ++i) {
    if (old_out[i] != new_out[i]) identical = false;
  }
  EXPECT_FALSE(identical) << "swap should install different weights";
}

TEST(ModelRegistryTest, EvictRemovesAndVersionSurvives) {
  ModelRegistry registry;
  registry.register_model("m", testing::make_executor());
  EXPECT_TRUE(registry.evict("m"));
  EXPECT_FALSE(registry.evict("m"));
  EXPECT_FALSE(registry.contains("m"));
  EXPECT_EQ(registry.version("m"), 1);
  EXPECT_EQ(registry.register_model("m", testing::make_executor()), 2);
}

TEST(ModelRegistryTest, CapacityEvictsLeastRecentlyUsed) {
  ModelRegistry registry(2);
  registry.register_model("a", testing::make_executor(1));
  registry.register_model("b", testing::make_executor(2));
  registry.get("a");  // b is now LRU
  registry.register_model("c", testing::make_executor(3));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_FALSE(registry.contains("b"));
  EXPECT_TRUE(registry.contains("c"));
}

TEST(ModelRegistryTest, LoadsModelFileFromDisk) {
  graph::GraphExecutor exec = testing::make_executor();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcnas_registry_test.dcnx")
          .string();
  graph::save_model(exec, path);

  ModelRegistry registry;
  registry.load("disk", path);
  Rng rng(4);
  const Tensor x = testing::make_image(rng);
  const Tensor a = exec.run(x);
  const Tensor b = registry.get("disk")->run(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, NamesAreSorted) {
  ModelRegistry registry;
  registry.register_model("zeta", testing::make_executor(1));
  registry.register_model("alpha", testing::make_executor(2));
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace dcnas::serve
