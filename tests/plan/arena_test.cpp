#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dcnas/graph/builder.hpp"
#include "dcnas/plan/compiler.hpp"

namespace dcnas::plan {
namespace {

CompiledPlan small_resnet_plan(bool fuse = true) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Rng rng(17);
  nn::ConfigurableResNet model(cfg, rng);
  for (int i = 0; i < 2; ++i) {
    const Tensor x = Tensor::rand_uniform({2, 5, 24, 24}, rng, -1.0f, 2.0f);
    model.forward(x);
  }
  model.set_training(false);
  graph::ModelGraph graph = graph::build_resnet_graph(cfg, 24);
  graph::GraphExecutor exec(graph, model);
  CompileOptions opts;
  opts.fuse = fuse;
  return compile_plan(exec, opts);
}

TEST(PlanArenaTest, LiveSlotsNeverOverlap) {
  const CompiledPlan plan = small_resnet_plan();
  // check_arena() is the compiler's own post-condition; re-assert the
  // pairwise property directly so a future check_arena regression cannot
  // mask an overlapping assignment.
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.slots.size(); ++j) {
      const ArenaSlot& a = plan.slots[i];
      const ArenaSlot& b = plan.slots[j];
      const bool live_overlap = a.def <= b.last_use && b.def <= a.last_use;
      const bool mem_overlap =
          a.offset < b.offset + b.size && b.offset < a.offset + a.size;
      if (live_overlap) {
        EXPECT_FALSE(mem_overlap)
            << "slots " << i << " and " << j << " are live together at "
            << "overlapping offsets";
      }
    }
  }
}

TEST(PlanArenaTest, ArenaIsSmallerThanSumOfSlots) {
  const CompiledPlan plan = small_resnet_plan();
  // The point of liveness analysis: non-overlapping lifetimes share
  // memory, so the arena is strictly smaller than naive per-slot buffers.
  EXPECT_LT(plan.arena_size, plan.total_slot_size());
  // And it must still fit the largest single slot.
  std::int64_t largest = 0;
  for (const ArenaSlot& s : plan.slots) largest = std::max(largest, s.size);
  EXPECT_GE(plan.arena_size, largest);
}

TEST(PlanArenaTest, SlotSizesMatchStepOutputShapes) {
  const CompiledPlan plan = small_resnet_plan();
  for (const PlanStep& s : plan.steps) {
    const ArenaSlot& slot = plan.slots[static_cast<std::size_t>(s.out)];
    EXPECT_EQ(slot.size, s.out_shape.numel()) << s.name;
  }
}

TEST(PlanArenaTest, ArenaBytesScaleLinearlyWithBatch) {
  const CompiledPlan plan = small_resnet_plan();
  const std::size_t one = plan.arena_bytes(1);
  EXPECT_EQ(plan.arena_bytes(8), one * 8);
  EXPECT_EQ(plan.arena_bytes(32), one * 32);
}

TEST(PlanArenaTest, OutputSlotLivesToTheEnd) {
  const CompiledPlan plan = small_resnet_plan();
  const ArenaSlot& out = plan.slots[static_cast<std::size_t>(plan.output_slot)];
  EXPECT_EQ(out.last_use, static_cast<int>(plan.steps.size()));
}

TEST(PlanArenaTest, UnfusedPlanArenaAlsoVerifies) {
  const CompiledPlan plan = small_resnet_plan(/*fuse=*/false);
  EXPECT_NO_THROW(plan.check_arena());
  EXPECT_LT(plan.arena_size, plan.total_slot_size());
}

TEST(PlanArenaTest, CheckArenaRejectsCorruptedOffsets) {
  CompiledPlan plan = small_resnet_plan();
  ASSERT_GE(plan.slots.size(), 2u);
  // Force two concurrently-live slots onto the same offset.
  const ArenaSlot& first = plan.slots[0];
  for (std::size_t j = 1; j < plan.slots.size(); ++j) {
    ArenaSlot& other = plan.slots[j];
    if (first.def <= other.last_use && other.def <= first.last_use) {
      other.offset = first.offset;
      EXPECT_THROW(plan.check_arena(), InternalError);
      return;
    }
  }
  FAIL() << "expected at least one pair of concurrently-live slots";
}

TEST(PlanArenaTest, CheckArenaRejectsOutOfBoundsSlot) {
  CompiledPlan plan = small_resnet_plan();
  plan.slots.back().offset = plan.arena_size;
  EXPECT_THROW(plan.check_arena(), InternalError);
}

}  // namespace
}  // namespace dcnas::plan
