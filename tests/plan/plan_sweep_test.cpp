/// Lattice-wide plan verification: every one of the 1,728 search-space
/// configurations compiles to a plan the PlanVerifier passes clean. The
/// graph-level twin lives in tests/analysis/sweep_test.cpp; this sweep
/// covers the *compiled artifact*. Configurations that cannot differ in
/// their plan are deduplicated (batch never affects a plan; pool_choice=0
/// collapses the pool-geometry axes; channels is the only input field the
/// model sees), and graphs are built at a reduced input size — the CI
/// plan-verify job sweeps the full deployment resolution via dcnas_lint.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "dcnas/analysis/plan_verifier.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/resnet.hpp"
#include "dcnas/plan/compiler.hpp"

namespace dcnas::plan {
namespace {

constexpr std::int64_t kSweepInputHw = 24;

TEST(PlanSweepTest, AllLatticeConfigsCompileAndVerifyClean) {
  const auto all = nas::SearchSpace::enumerate_all();
  ASSERT_EQ(static_cast<std::int64_t>(all.size()),
            nas::SearchSpace::lattice_size());

  const analysis::PlanVerifier verifier = analysis::PlanVerifier::standard();
  std::set<std::string> seen;
  std::size_t verified = 0;
  for (const auto& cfg : all) {
    const std::string key =
        "ch" + std::to_string(cfg.channels) + "_" + cfg.canonical_arch_key();
    if (!seen.insert(key).second) continue;

    const nn::ResNetConfig rc = cfg.to_resnet_config();
    Rng rng(1234);
    nn::ConfigurableResNet model(rc, rng);
    model.set_training(false);
    graph::GraphExecutor exec(graph::build_resnet_graph(rc, kSweepInputHw),
                              model);
    const CompiledPlan plan = compile_plan(exec);
    const analysis::VerifyResult result = verifier.verify(plan, exec);
    ASSERT_TRUE(result.ok())
        << cfg.lattice_key() << ":\n" << result.to_string();
    ASSERT_TRUE(result.diagnostics.empty())
        << cfg.lattice_key() << ":\n" << result.to_string();
    ++verified;
  }
  // 288 arch points × 2 channel options, minus pool-geometry collapse for
  // the no-pool configurations.
  EXPECT_EQ(verified, 360u);
}

}  // namespace
}  // namespace dcnas::plan
