#include "dcnas/analysis/plan_verifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "dcnas/analysis/diagnostic.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/nn/resnet.hpp"
#include "dcnas/plan/compiler.hpp"

namespace dcnas::analysis {
namespace {

using graph::GraphExecutor;
using graph::KernelKind;
using graph::ModelGraph;
using plan::CompiledPlan;
using plan::compile_plan;
using plan::kInputSlot;
using plan::PlanStep;

/// A small trained-ish ResNet model + executor (same fixture recipe as
/// compiler_test) — rich enough to carry ConvBnRelu fusions, residual adds,
/// and a pool.
struct Fixture {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  ModelGraph graph;
  std::unique_ptr<GraphExecutor> exec;
};

Fixture make_fixture(std::int64_t hw = 24) {
  Fixture f;
  f.config = nn::ResNetConfig::baseline(5);
  f.config.init_width = 32;
  f.config.conv1_kernel = 3;
  f.config.conv1_padding = 1;
  Rng rng(17);
  f.model = std::make_unique<nn::ConfigurableResNet>(f.config, rng);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, hw, hw}, rng, -1.0f, 2.0f);
    f.model->forward(x);
  }
  f.model->set_training(false);
  f.graph = graph::build_resnet_graph(f.config, hw);
  f.exec = std::make_unique<GraphExecutor>(f.graph, *f.model);
  return f;
}

VerifyResult verify(const CompiledPlan& plan, const GraphExecutor& exec) {
  return PlanVerifier::standard().verify(plan, exec);
}

int find_step(const CompiledPlan& plan, KernelKind kind) {
  for (std::size_t t = 0; t < plan.steps.size(); ++t) {
    if (plan.steps[t].kind == kind) return static_cast<int>(t);
  }
  return -1;
}

TEST(PlanVerifierTest, CompiledPlanVerifiesClean) {
  Fixture f = make_fixture();
  const CompiledPlan plan = compile_plan(*f.exec);
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_TRUE(result.diagnostics.empty()) << result.to_string();
}

TEST(PlanVerifierTest, UnfusedPlanVerifiesClean) {
  Fixture f = make_fixture();
  const CompiledPlan plan = compile_plan(*f.exec, {.fuse = false});
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(PlanVerifierTest, PreFoldedExecutorPlanVerifiesClean) {
  Fixture f = make_fixture();
  f.exec->fold_batchnorm();
  const CompiledPlan plan = compile_plan(*f.exec);
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(PlanVerifierTest, StandardPipelineHasSixPasses) {
  const PlanVerifier v = PlanVerifier::standard();
  EXPECT_EQ(v.pass_count(), 6u);
  const auto names = v.pass_names();
  EXPECT_EQ(names.front(), "plan-arena");
  EXPECT_EQ(names.back(), "plan-quant");
}

// --- one hand-corruption per rule id ---------------------------------------

TEST(PlanVerifierTest, DetectsSlotBeyondArena) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  plan.slots[0].offset = plan.arena_size;  // extent now exceeds the arena
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanSlotBounds)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsForgedLiveness) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  // Shrink the output slot's stored live range: the re-derivation from the
  // step list disagrees.
  plan.slots[static_cast<std::size_t>(plan.output_slot)].last_use -= 1;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanLiveness)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsAliasingForAllBatchSizes) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  // Step 1 reads step 0's slot while writing its own: both are live at step
  // 1. Shifting the second onto the first aliases them at *every* batch.
  const int a = plan.steps[0].out;
  const int b = plan.steps[1].out;
  ASSERT_NE(a, b);
  plan.slots[static_cast<std::size_t>(b)].offset =
      plan.slots[static_cast<std::size_t>(a)].offset;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanAlias)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsReadBeforeDef) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  // An in-place step both reads before-def (its own write) and violates the
  // no-overwrite operand contract.
  plan.steps[0].args[0] = plan.steps[0].out;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanDefBeforeUse)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsForgedProvenance) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  const int t = find_step(plan, KernelKind::kConvBnRelu);
  ASSERT_GE(t, 0);
  // Drop the BN node from the fused chain: the step no longer decomposes as
  // its kernel kind claims, and the node is no longer covered by any step.
  auto& nodes = plan.steps[static_cast<std::size_t>(t)].nodes;
  ASSERT_EQ(nodes.size(), 3u);
  nodes.erase(nodes.begin() + 1);
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanProvenance)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsReorderedSteps) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  ASSERT_GE(plan.steps.size(), 2u);
  std::swap(plan.steps[0], plan.steps[1]);
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanStepOrder)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsIllegalBnFusion) {
  // input -> conv -> relu -> bn: the legality pass flags the BN (producer is
  // not a Conv), so the compiler keeps it standalone. Forge a plan that
  // folds it anyway.
  ModelGraph g;
  const int in = g.add_input({3, 8, 8});
  const int conv = g.add_conv(in, 4, 3, 1, 1, "conv");
  const int relu = g.add_relu(conv, "relu");
  const int bn = g.add_batchnorm(relu, "late_bn");
  g.add_output(bn);

  Rng rng(5);
  std::vector<graph::NodeState> state(g.size());
  state[static_cast<std::size_t>(conv)].conv_weight =
      Tensor::randn({4, 3 * 3 * 3}, rng, 0.0f, 0.5f);
  auto& bn_st = state[static_cast<std::size_t>(bn)];
  bn_st.bn_gamma = Tensor::rand_uniform({4}, rng, 0.5f, 1.5f);
  bn_st.bn_beta = Tensor::randn({4}, rng);
  bn_st.bn_mean = Tensor::randn({4}, rng);
  bn_st.bn_var = Tensor::rand_uniform({4}, rng, 0.1f, 2.0f);
  auto exec = graph::GraphExecutor::from_state(
      g, std::move(state), std::vector<bool>(g.size(), false));

  CompiledPlan plan = compile_plan(exec);
  const int t = find_step(plan, KernelKind::kConvRelu);
  ASSERT_GE(t, 0);
  PlanStep& step = plan.steps[static_cast<std::size_t>(t)];
  step.kind = KernelKind::kConvBnRelu;
  step.nodes = {conv, bn, relu};  // claims to fold the refused BN
  const VerifyResult result = verify(plan, exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanFusionIllegal))
      << result.to_string();
}

TEST(PlanVerifierTest, DetectsRewiredOperand) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  // Step 1's operand is step 0's slot; repointing it at the caller's input
  // tensor is valid dataflow but wrong wiring.
  ASSERT_NE(plan.steps[1].args[0], kInputSlot);
  plan.steps[1].args[0] = kInputSlot;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanWiring)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsRedirectedOutput) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  ASSERT_NE(plan.output_slot, plan.steps[0].out);
  plan.output_slot = plan.steps[0].out;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanOutput)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsShapeMismatch) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  plan.steps[1].out_shape.c += 1;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanShape)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsTruncatedWeights) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  const int t = find_step(plan, KernelKind::kConvBnRelu);
  ASSERT_GE(t, 0);
  plan.steps[static_cast<std::size_t>(t)].weight = Tensor({5});
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanWeightShape)) << result.to_string();
}

TEST(PlanVerifierTest, DetectsPerturbedFoldedWeight) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  const int t = find_step(plan, KernelKind::kConvBnRelu);
  ASSERT_GE(t, 0);
  // Far outside what compile-time rounding can explain (the interval bound
  // is a few ulps wide), far below what an output-comparison smoke test
  // would notice on every input.
  plan.steps[static_cast<std::size_t>(t)].weight[0] += 1e-2f;
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.has_rule(rules::kPlanFoldError)) << result.to_string();
}

TEST(PlanVerifierTest, AcceptsFoldWithinRoundingBound) {
  // The flip side of DetectsPerturbedFoldedWeight: a weight moved by one
  // ulp — indistinguishable from legitimate compile-time rounding — must
  // NOT be flagged, or the verifier would reject honest compilers.
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  const int t = find_step(plan, KernelKind::kConvBnRelu);
  ASSERT_GE(t, 0);
  Tensor& w = plan.steps[static_cast<std::size_t>(t)].weight;
  w[0] = std::nextafter(w[0], 2.0f * w[0] + 1.0f);
  const VerifyResult result = verify(plan, *f.exec);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(PlanVerifierTest, VerifyOrThrowNamesRuleIds) {
  Fixture f = make_fixture();
  CompiledPlan plan = compile_plan(*f.exec);
  EXPECT_NO_THROW(verify_plan_or_throw(plan, *f.exec, "test"));
  plan.slots[0].offset = plan.arena_size;
  try {
    verify_plan_or_throw(plan, *f.exec, "test boundary");
    FAIL() << "corrupt plan was accepted";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test boundary"), std::string::npos) << what;
    EXPECT_NE(what.find(rules::kPlanSlotBounds), std::string::npos) << what;
  }
}

TEST(PlanVerifierTest, CompilerSelfCheckHookRuns) {
  // The analysis library installs verify_plan_or_throw as the compiler's
  // self-check in debug builds; the hook mechanism itself is build-agnostic.
  const plan::PlanSelfCheck previous = plan::plan_self_check();
  static int calls = 0;
  calls = 0;
  plan::set_plan_self_check(
      [](const CompiledPlan&, const GraphExecutor&) { ++calls; });
  Fixture f = make_fixture();
  (void)compile_plan(*f.exec);
  EXPECT_EQ(calls, 1);
  plan::set_plan_self_check(previous);
}

}  // namespace
}  // namespace dcnas::analysis
