#include "dcnas/plan/compiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dcnas/graph/builder.hpp"
#include "dcnas/plan/executor.hpp"

namespace dcnas::plan {
namespace {

using graph::KernelKind;
using graph::ModelGraph;
using graph::OpKind;

/// Builds a trained-ish model (a few BN-updating forward passes so running
/// stats are non-trivial) plus its graph at a small input size.
struct Bundle {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  ModelGraph graph;
};

Bundle make_bundle(std::int64_t width, std::int64_t hw,
                   bool with_pool = true) {
  Bundle b;
  b.config = nn::ResNetConfig::baseline(5);
  b.config.init_width = width;
  b.config.conv1_kernel = 3;
  b.config.conv1_padding = 1;
  b.config.with_pool = with_pool;
  Rng rng(17);
  b.model = std::make_unique<nn::ConfigurableResNet>(b.config, rng);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::rand_uniform({4, 5, hw, hw}, rng, -1.0f, 2.0f);
    b.model->forward(x);
  }
  b.model->set_training(false);
  b.graph = graph::build_resnet_graph(b.config, hw);
  return b;
}

int count_kind(const CompiledPlan& plan, KernelKind kind) {
  return static_cast<int>(
      std::count_if(plan.steps.begin(), plan.steps.end(),
                    [&](const PlanStep& s) { return s.kind == kind; }));
}

TEST(PlanCompilerTest, FusesResNetIntoExpectedStepKinds) {
  Bundle b = make_bundle(32, 24);
  graph::GraphExecutor exec(b.graph, *b.model);
  const CompiledPlan plan = compile_plan(exec);

  // conv1+bn1+relu1 and every block's conv1+bn1+relu1 fuse fully.
  EXPECT_GT(count_kind(plan, KernelKind::kConvBnRelu), 0);
  // Block tails (conv2+bn2, proj+proj_bn) fuse without activation.
  EXPECT_GT(count_kind(plan, KernelKind::kConvBn), 0);
  // Residual adds absorb their trailing ReLU.
  EXPECT_EQ(count_kind(plan, KernelKind::kAddRelu), 8);
  EXPECT_EQ(count_kind(plan, KernelKind::kMaxPool), 1);
  EXPECT_EQ(count_kind(plan, KernelKind::kGlobalAvgPool), 1);
  EXPECT_EQ(count_kind(plan, KernelKind::kLinear), 1);
  // Nothing is left unfused in a standard ResNet graph.
  EXPECT_EQ(count_kind(plan, KernelKind::kBatchNorm), 0);
  EXPECT_EQ(count_kind(plan, KernelKind::kRelu), 0);
  EXPECT_EQ(count_kind(plan, KernelKind::kAdd), 0);
  EXPECT_EQ(count_kind(plan, KernelKind::kConv), 0);

  // Every BatchNorm in the graph folded into its conv.
  int bn_nodes = 0;
  for (const auto& n : b.graph.nodes()) {
    if (n.kind == OpKind::kBatchNorm) ++bn_nodes;
  }
  EXPECT_EQ(plan.folded_batchnorms, bn_nodes);
  EXPECT_EQ(plan.graph_nodes, static_cast<int>(b.graph.size()));
}

TEST(PlanCompilerTest, EveryConvStepCarriesFoldedBias) {
  Bundle b = make_bundle(32, 24);
  graph::GraphExecutor exec(b.graph, *b.model);
  const CompiledPlan plan = compile_plan(exec);
  for (const PlanStep& s : plan.steps) {
    if (s.kind == KernelKind::kConvBn || s.kind == KernelKind::kConvBnRelu) {
      ASSERT_TRUE(s.bias.has_value()) << s.name;
      EXPECT_EQ(s.bias->numel(), s.out_shape.c);
      EXPECT_EQ(s.weight.numel(),
                s.out_shape.c * s.in_shape.c * s.attrs.kernel *
                    s.attrs.kernel);
    }
  }
}

TEST(PlanCompilerTest, UnfusedOptionEmitsOneStepPerOp) {
  Bundle b = make_bundle(32, 24);
  graph::GraphExecutor exec(b.graph, *b.model);
  CompileOptions opts;
  opts.fuse = false;
  const CompiledPlan plan = compile_plan(exec, opts);
  // One step for every non-structural node (input/output excluded).
  EXPECT_EQ(plan.steps.size(), b.graph.size() - 2);
  EXPECT_EQ(plan.folded_batchnorms, 0);
  EXPECT_GT(count_kind(plan, KernelKind::kBatchNorm), 0);
  EXPECT_GT(count_kind(plan, KernelKind::kRelu), 0);
}

TEST(PlanCompilerTest, PreFoldedExecutorCompilesToSamePlanOutputs) {
  Bundle b = make_bundle(32, 24);
  graph::GraphExecutor exec(b.graph, *b.model);
  const CompiledPlan from_unfolded = compile_plan(exec);
  exec.fold_batchnorm();
  const CompiledPlan from_folded = compile_plan(exec);
  EXPECT_EQ(from_unfolded.folded_batchnorms, from_folded.folded_batchnorms);
  ASSERT_EQ(from_unfolded.steps.size(), from_folded.steps.size());
  // Folding before or during compilation must yield identical weights.
  for (std::size_t i = 0; i < from_unfolded.steps.size(); ++i) {
    const PlanStep& a = from_unfolded.steps[i];
    const PlanStep& f = from_folded.steps[i];
    ASSERT_EQ(a.weight.numel(), f.weight.numel()) << a.name;
    for (std::int64_t j = 0; j < a.weight.numel(); ++j) {
      EXPECT_FLOAT_EQ(a.weight[j], f.weight[j]) << a.name;
    }
  }
}

/// Hand-built graph: input -> conv -> relu -> bn -> output. The BN's
/// producer is a ReLU, which the fusion-legality pass flags — the compiler
/// must keep it as a standalone scale/shift step, never fold it.
TEST(PlanCompilerTest, RefusesToFoldBnWhoseProducerIsNotConv) {
  ModelGraph g;
  const int in = g.add_input({3, 8, 8});
  const int conv = g.add_conv(in, 4, 3, 1, 1, "conv");
  const int relu = g.add_relu(conv, "relu");
  const int bn = g.add_batchnorm(relu, "late_bn");
  g.add_output(bn);

  Rng rng(5);
  std::vector<graph::NodeState> state(g.size());
  state[static_cast<std::size_t>(conv)].conv_weight =
      Tensor::randn({4, 3 * 3 * 3}, rng, 0.0f, 0.5f);
  auto& bn_st = state[static_cast<std::size_t>(bn)];
  bn_st.bn_gamma = Tensor::rand_uniform({4}, rng, 0.5f, 1.5f);
  bn_st.bn_beta = Tensor::randn({4}, rng);
  bn_st.bn_mean = Tensor::randn({4}, rng);
  bn_st.bn_var = Tensor::rand_uniform({4}, rng, 0.1f, 2.0f);
  auto exec = graph::GraphExecutor::from_state(
      g, std::move(state), std::vector<bool>(g.size(), false));

  const CompiledPlan plan = compile_plan(exec);
  EXPECT_EQ(plan.folded_batchnorms, 0);
  EXPECT_EQ(count_kind(plan, KernelKind::kBatchNorm), 1);
  EXPECT_EQ(count_kind(plan, KernelKind::kConvRelu), 1);

  // And the standalone BN must compute the right scale/shift.
  PlanExecutor plan_exec(plan);
  const Tensor x = Tensor::rand_uniform({2, 3, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor want = exec.run(x);
  const Tensor got = plan_exec.run(x);
  ASSERT_TRUE(want.same_shape(got));
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-5) << i;
  }
}

/// Hand-built graph where the conv output has two consumers (its BN and a
/// residual Add): folding the BN into the conv would change the Add's
/// operand, so fusion must be refused and the BN must run standalone.
TEST(PlanCompilerTest, RefusesToFoldBnOfMultiConsumerConv) {
  ModelGraph g;
  const int in = g.add_input({3, 8, 8});
  const int conv = g.add_conv(in, 3, 3, 1, 1, "conv");
  const int bn = g.add_batchnorm(conv, "bn");
  const int relu = g.add_relu(bn, "relu");
  const int add = g.add_add(relu, conv, "residual");
  g.add_output(add);

  Rng rng(7);
  std::vector<graph::NodeState> state(g.size());
  state[static_cast<std::size_t>(conv)].conv_weight =
      Tensor::randn({3, 3 * 3 * 3}, rng, 0.0f, 0.5f);
  auto& bn_st = state[static_cast<std::size_t>(bn)];
  bn_st.bn_gamma = Tensor::rand_uniform({3}, rng, 0.5f, 1.5f);
  bn_st.bn_beta = Tensor::randn({3}, rng);
  bn_st.bn_mean = Tensor::randn({3}, rng);
  bn_st.bn_var = Tensor::rand_uniform({3}, rng, 0.1f, 2.0f);
  auto exec = graph::GraphExecutor::from_state(
      g, std::move(state), std::vector<bool>(g.size(), false));

  const CompiledPlan plan = compile_plan(exec);
  EXPECT_EQ(plan.folded_batchnorms, 0);
  EXPECT_EQ(count_kind(plan, KernelKind::kBatchNorm), 1);
  EXPECT_EQ(count_kind(plan, KernelKind::kConv), 1);
  EXPECT_EQ(count_kind(plan, KernelKind::kConvBn), 0);
  EXPECT_EQ(count_kind(plan, KernelKind::kConvBnRelu), 0);

  PlanExecutor plan_exec(plan);
  const Tensor x = Tensor::rand_uniform({2, 3, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor want = exec.run(x);
  const Tensor got = plan_exec.run(x);
  ASSERT_TRUE(want.same_shape(got));
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-5) << i;
  }
}

TEST(PlanCompilerTest, StepWiringIsTopological) {
  Bundle b = make_bundle(48, 24, false);
  graph::GraphExecutor exec(b.graph, *b.model);
  const CompiledPlan plan = compile_plan(exec);
  for (std::size_t t = 0; t < plan.steps.size(); ++t) {
    for (int arg : plan.steps[t].args) {
      if (arg == kInputSlot) continue;
      // Every read slot was defined by an earlier step.
      EXPECT_LT(plan.slots[static_cast<std::size_t>(arg)].def,
                static_cast<int>(t));
    }
  }
}

}  // namespace
}  // namespace dcnas::plan
