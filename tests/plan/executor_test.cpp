#include "dcnas/plan/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "dcnas/graph/builder.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/plan/compiler.hpp"

namespace dcnas::plan {
namespace {

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

/// One lattice point of the paper's 1,728-configuration search space,
/// realised as a trained-ish model + graph + op-by-op executor.
struct Bundle {
  nn::ResNetConfig config;
  std::unique_ptr<nn::ConfigurableResNet> model;
  graph::ModelGraph graph;
  std::unique_ptr<graph::GraphExecutor> exec;
};

Bundle make_bundle(const nn::ResNetConfig& config, std::int64_t hw,
                   unsigned seed) {
  Bundle b;
  b.config = config;
  Rng rng(seed);
  b.model = std::make_unique<nn::ConfigurableResNet>(b.config, rng);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::rand_uniform(
        {4, b.config.in_channels, hw, hw}, rng, -1.0f, 2.0f);
    b.model->forward(x);
  }
  b.model->set_training(false);
  b.graph = graph::build_resnet_graph(b.config, hw);
  b.exec = std::make_unique<graph::GraphExecutor>(b.graph, *b.model);
  return b;
}

/// The differential contract from the issue: the fused-and-folded plan must
/// match the unfolded op-by-op GraphExecutor within 1e-5 elementwise.
void expect_plan_matches_graph(const Bundle& b, std::int64_t hw,
                               std::int64_t batch, unsigned seed) {
  const CompiledPlan plan = compile_plan(*b.exec);
  PlanExecutor plan_exec(plan);
  Rng rng(seed);
  const Tensor x = Tensor::rand_uniform(
      {batch, b.config.in_channels, hw, hw}, rng, -1.0f, 1.0f);
  const Tensor want = b.exec->run(x);
  const Tensor got = plan_exec.run(x);
  EXPECT_LT(max_abs_diff(want, got), 1e-5)
      << b.config.to_string() << " hw=" << hw << " batch=" << batch;
}

TEST(PlanExecutorTest, MatchesGraphExecutorBaseline) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Bundle b = make_bundle(cfg, 24, 17);
  expect_plan_matches_graph(b, 24, 2, 3);
}

// Lattice extremes of the search space (§search_space): every knob at its
// minimum and at its maximum, plus mixed corners covering each axis.
TEST(PlanExecutorTest, MatchesGraphExecutorAtLatticeMinCorner) {
  nn::ResNetConfig cfg;
  cfg.in_channels = 5;
  cfg.conv1_kernel = 3;
  cfg.conv1_stride = 1;
  cfg.conv1_padding = 1;
  cfg.with_pool = false;
  cfg.init_width = 32;
  Bundle b = make_bundle(cfg, 16, 11);
  expect_plan_matches_graph(b, 16, 1, 5);
}

TEST(PlanExecutorTest, MatchesGraphExecutorAtLatticeMaxCorner) {
  nn::ResNetConfig cfg;
  cfg.in_channels = 7;
  cfg.conv1_kernel = 7;
  cfg.conv1_stride = 2;
  cfg.conv1_padding = 3;
  cfg.with_pool = true;
  cfg.pool_kernel = 3;
  cfg.pool_stride = 2;
  cfg.init_width = 64;
  Bundle b = make_bundle(cfg, 40, 13);
  expect_plan_matches_graph(b, 40, 2, 7);
}

TEST(PlanExecutorTest, MatchesGraphExecutorAtMixedCorners) {
  // 7 channels, small stem, pooling with the small kernel.
  nn::ResNetConfig a;
  a.in_channels = 7;
  a.conv1_kernel = 3;
  a.conv1_stride = 2;
  a.conv1_padding = 1;
  a.with_pool = true;
  a.pool_kernel = 2;
  a.pool_stride = 1;
  a.init_width = 48;
  Bundle ba = make_bundle(a, 24, 19);
  expect_plan_matches_graph(ba, 24, 3, 23);

  // 5 channels, large stem kernel without pooling, widest stages.
  nn::ResNetConfig c;
  c.in_channels = 5;
  c.conv1_kernel = 7;
  c.conv1_stride = 1;
  c.conv1_padding = 2;
  c.with_pool = false;
  c.init_width = 64;
  Bundle bc = make_bundle(c, 18, 29);
  expect_plan_matches_graph(bc, 18, 2, 31);
}

TEST(PlanExecutorTest, MatchesAcrossBatchSizesWithOnePlan) {
  // One compiled plan (per-sample arena offsets) serves every batch size.
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Bundle b = make_bundle(cfg, 24, 17);
  const CompiledPlan plan = compile_plan(*b.exec);
  PlanExecutor plan_exec(plan);
  Rng rng(41);
  for (std::int64_t batch : {1, 3, 8}) {
    const Tensor x = Tensor::rand_uniform(
        {batch, cfg.in_channels, 24, 24}, rng, -1.0f, 1.0f);
    EXPECT_LT(max_abs_diff(b.exec->run(x), plan_exec.run(x)), 1e-5)
        << "batch=" << batch;
  }
}

TEST(PlanExecutorTest, UnfusedPlanMatchesFusedPlan) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Bundle b = make_bundle(cfg, 24, 17);
  CompileOptions unfused;
  unfused.fuse = false;
  PlanExecutor fused(compile_plan(*b.exec));
  PlanExecutor op_by_op(compile_plan(*b.exec, unfused));
  Rng rng(43);
  const Tensor x =
      Tensor::rand_uniform({2, cfg.in_channels, 24, 24}, rng, -1.0f, 1.0f);
  EXPECT_LT(max_abs_diff(op_by_op.run(x), fused.run(x)), 1e-5);
}

TEST(PlanExecutorTest, SteadyStateRunsAllocateNothing) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Bundle b = make_bundle(cfg, 24, 17);
  PlanExecutor plan_exec(compile_plan(*b.exec));
  auto& allocs =
      obs::MetricsRegistry::global().counter("plan.exec.allocs");
  auto& reuse =
      obs::MetricsRegistry::global().counter("plan.exec.arena_reuse.count");
  Rng rng(47);
  // Warm up with the largest batch so the pooled arena's capacity covers
  // everything that follows.
  const Tensor warm =
      Tensor::rand_uniform({8, cfg.in_channels, 24, 24}, rng, -1.0f, 1.0f);
  plan_exec.run(warm);
  EXPECT_EQ(plan_exec.pooled_arenas(), 1u);

  const std::int64_t allocs_before = allocs.value();
  const std::int64_t reuse_before = reuse.value();
  for (std::int64_t batch : {8, 1, 4, 8, 2}) {
    const Tensor x = Tensor::rand_uniform(
        {batch, cfg.in_channels, 24, 24}, rng, -1.0f, 1.0f);
    plan_exec.run(x);
  }
  // The obs gate from the issue: zero arena allocations in steady state.
  EXPECT_EQ(allocs.value() - allocs_before, 0);
  EXPECT_EQ(reuse.value() - reuse_before, 5);
  EXPECT_EQ(plan_exec.pooled_arenas(), 1u);
}

TEST(PlanExecutorTest, ConcurrentRunsAreIsolatedAndCorrect) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Bundle b = make_bundle(cfg, 24, 17);
  PlanExecutor plan_exec(compile_plan(*b.exec));

  constexpr int kThreads = 4;
  constexpr int kReps = 8;
  // Per-thread distinct inputs with precomputed references: interleaved
  // runs must never bleed one thread's activations into another's arena.
  std::vector<Tensor> inputs;
  std::vector<Tensor> want;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + static_cast<unsigned>(t));
    inputs.push_back(Tensor::rand_uniform(
        {1 + t % 3, cfg.in_channels, 24, 24}, rng, -1.0f, 1.0f));
    want.push_back(b.exec->run(inputs.back()));
  }
  std::vector<double> worst(kThreads, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kReps; ++r) {
        const Tensor got = plan_exec.run(inputs[static_cast<std::size_t>(t)]);
        double m = 0.0;
        const Tensor& ref = want[static_cast<std::size_t>(t)];
        for (std::int64_t i = 0; i < ref.numel(); ++i) {
          m = std::max(
              m, std::abs(static_cast<double>(ref[i]) - got[i]));
        }
        worst[static_cast<std::size_t>(t)] =
            std::max(worst[static_cast<std::size_t>(t)], m);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_LT(worst[static_cast<std::size_t>(t)], 1e-5) << "thread " << t;
  }
  // Arenas leased concurrently are returned: the pool holds at most one
  // buffer per peak-concurrent run.
  EXPECT_LE(plan_exec.pooled_arenas(), static_cast<std::size_t>(kThreads));
}

TEST(PlanExecutorTest, RejectsWrongInputShape) {
  nn::ResNetConfig cfg = nn::ResNetConfig::baseline(5);
  cfg.init_width = 32;
  cfg.conv1_kernel = 3;
  cfg.conv1_padding = 1;
  Bundle b = make_bundle(cfg, 24, 17);
  PlanExecutor plan_exec(compile_plan(*b.exec));
  Rng rng(53);
  const Tensor bad_hw =
      Tensor::rand_uniform({1, cfg.in_channels, 16, 16}, rng, -1.0f, 1.0f);
  EXPECT_THROW(plan_exec.run(bad_hw), InvalidArgument);
  const Tensor bad_c = Tensor::rand_uniform({1, 3, 24, 24}, rng, -1.0f, 1.0f);
  EXPECT_THROW(plan_exec.run(bad_c), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::plan
