#include "dcnas/geodata/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dcnas::geodata {
namespace {

DatasetOptions tiny_options(int channels) {
  DatasetOptions opt;
  opt.scale = 1.0 / 256.0;  // ~8+8 Nebraska chips etc. — fast for tests
  opt.chip_size = 24;
  opt.scene_size = 160;
  opt.channels = channels;
  opt.seed = 99;
  return opt;
}

TEST(DatasetTest, BuildsBalancedChips) {
  const DrainageDataset ds = build_dataset(tiny_options(5));
  EXPECT_GT(ds.size(), 0);
  EXPECT_EQ(ds.images.dim(1), 5);
  EXPECT_EQ(ds.images.dim(2), 24);
  EXPECT_EQ(static_cast<std::int64_t>(ds.labels.size()), ds.size());
  std::int64_t positives = 0;
  for (int label : ds.labels) positives += label;
  EXPECT_EQ(2 * positives, ds.size()) << "dataset must be class-balanced";
}

TEST(DatasetTest, PerRegionQuotasScaleWithTable1) {
  const DrainageDataset ds = build_dataset(tiny_options(5));
  ASSERT_EQ(ds.per_region.size(), 4u);
  // Ordering follows Table 1 and counts scale with the region sizes:
  // California (2388) > Nebraska (2022) > Illinois (1011) > N.Dakota (613).
  EXPECT_EQ(ds.per_region[0].name, "Nebraska");
  EXPECT_GE(ds.per_region[3].true_chips, ds.per_region[0].true_chips);
  EXPECT_GE(ds.per_region[0].true_chips, ds.per_region[1].true_chips);
  EXPECT_GE(ds.per_region[1].true_chips, ds.per_region[2].true_chips);
  for (const auto& r : ds.per_region) {
    EXPECT_EQ(r.true_chips, r.false_chips);
    EXPECT_GE(r.true_chips, 2);
  }
}

TEST(DatasetTest, SevenChannelAppendsIndices) {
  const DrainageDataset ds5 = build_dataset(tiny_options(5));
  const DrainageDataset ds7 = build_dataset(tiny_options(7));
  EXPECT_EQ(ds7.images.dim(1), 7);
  EXPECT_EQ(ds5.size(), ds7.size());
  // First five channels agree chip-for-chip.
  const std::int64_t hw = 24 * 24;
  for (std::int64_t i = 0; i < 5 * hw; ++i) {
    ASSERT_FLOAT_EQ(ds5.images[i], ds7.images[i]);
  }
  // NDVI channel (index 5) is bounded in [-1, 1].
  for (std::int64_t i = 0; i < ds7.size(); ++i) {
    for (std::int64_t j = 0; j < hw; ++j) {
      const float v = ds7.images[(i * 7 + 5) * hw + j];
      ASSERT_GE(v, -1.0f);
      ASSERT_LE(v, 1.0f);
    }
  }
}

TEST(DatasetTest, DemChannelIsLocallyStandardized) {
  const DrainageDataset ds = build_dataset(tiny_options(5));
  const std::int64_t hw = 24 * 24;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(ds.size(), 6); ++i) {
    double mean = 0.0;
    for (std::int64_t j = 0; j < hw; ++j) mean += ds.images[i * 5 * hw + j];
    mean /= static_cast<double>(hw);
    EXPECT_NEAR(mean, 0.0, 1e-3) << "chip " << i;
  }
}

TEST(DatasetTest, DeterministicPerSeed) {
  const DrainageDataset a = build_dataset(tiny_options(5));
  const DrainageDataset b = build_dataset(tiny_options(5));
  ASSERT_EQ(a.size(), b.size());
  for (std::int64_t i = 0; i < a.images.numel(); ++i) {
    ASSERT_EQ(a.images[i], b.images[i]);
  }
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DatasetTest, RegionIdsIndexCatalog) {
  const DrainageDataset ds = build_dataset(tiny_options(5));
  for (int rid : ds.region_ids) {
    EXPECT_GE(rid, 0);
    EXPECT_LT(rid, 4);
  }
}

TEST(DatasetTest, TrueAndFalseChipsAreStatisticallyDifferent) {
  // The embankment raises the DEM at the chip center for true chips: the
  // mean DEM in a 5x5 center window (after per-chip standardization) must
  // be higher for positives than negatives on average.
  DatasetOptions opt = tiny_options(5);
  opt.scale = 1.0 / 128.0;
  const DrainageDataset ds = build_dataset(opt);
  const std::int64_t hw = 24 * 24;
  double pos_center = 0.0, neg_center = 0.0;
  std::int64_t pos_n = 0, neg_n = 0;
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    double center = 0.0;
    for (std::int64_t y = 10; y < 15; ++y) {
      for (std::int64_t x = 10; x < 15; ++x) {
        center += ds.images[i * 5 * hw + y * 24 + x];
      }
    }
    if (ds.labels[static_cast<std::size_t>(i)] == 1) {
      pos_center += center;
      ++pos_n;
    } else {
      neg_center += center;
      ++neg_n;
    }
  }
  EXPECT_GT(pos_center / pos_n, neg_center / neg_n + 0.05);
}

TEST(DatasetTest, RejectsInvalidOptions) {
  DatasetOptions opt = tiny_options(5);
  opt.channels = 6;
  EXPECT_THROW(build_dataset(opt), InvalidArgument);
  opt = tiny_options(5);
  opt.chip_size = 4;
  EXPECT_THROW(build_dataset(opt), InvalidArgument);
  opt = tiny_options(5);
  opt.scale = 0.0;
  EXPECT_THROW(build_dataset(opt), InvalidArgument);
  opt = tiny_options(5);
  opt.scene_size = 40;
  opt.chip_size = 24;
  EXPECT_THROW(build_dataset(opt), InvalidArgument);
}

TEST(ExtractChipTest, BoundsAreEnforced) {
  SceneOptions so;
  so.size = 64;
  const GeoScene scene = synthesize_scene(so, 3);
  std::vector<float> buf(5 * 16 * 16);
  EXPECT_NO_THROW(extract_chip(scene, 32, 32, 16, 5, buf.data()));
  EXPECT_THROW(extract_chip(scene, 2, 32, 16, 5, buf.data()),
               InvalidArgument);
  EXPECT_THROW(extract_chip(scene, 32, 63, 16, 5, buf.data()),
               InvalidArgument);
  EXPECT_THROW(extract_chip(scene, 32, 32, 16, 6, buf.data()),
               InvalidArgument);
}

}  // namespace
}  // namespace dcnas::geodata
