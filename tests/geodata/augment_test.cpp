#include "dcnas/geodata/augment.hpp"

#include <gtest/gtest.h>

namespace dcnas::geodata {
namespace {

Tensor numbered_chip(std::int64_t n, std::int64_t c, std::int64_t hw) {
  Tensor t({n, c, hw, hw});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  return t;
}

TEST(AugmentTest, HorizontalFlipMirrorsColumns) {
  const Tensor x = numbered_chip(1, 1, 3);
  const Tensor y = flip_horizontal(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), x.at(0, 0, 0, 2));
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), x.at(0, 0, 1, 1));
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), x.at(0, 0, 2, 0));
}

TEST(AugmentTest, VerticalFlipMirrorsRows) {
  const Tensor x = numbered_chip(1, 2, 3);
  const Tensor y = flip_vertical(x);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 1), x.at(0, 1, 2, 1));
}

TEST(AugmentTest, FlipsAreInvolutions) {
  const Tensor x = numbered_chip(2, 3, 5);
  const Tensor hh = flip_horizontal(flip_horizontal(x));
  const Tensor vv = flip_vertical(flip_vertical(x));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_EQ(hh[i], x[i]);
    ASSERT_EQ(vv[i], x[i]);
  }
}

TEST(AugmentTest, Rotate90FourTimesIsIdentity) {
  const Tensor x = numbered_chip(1, 2, 4);
  Tensor y = x;
  for (int i = 0; i < 4; ++i) y = rotate90(y);
  for (std::int64_t i = 0; i < x.numel(); ++i) ASSERT_EQ(y[i], x[i]);
}

TEST(AugmentTest, Rotate90MovesCornersCorrectly) {
  // CCW rotation: top-right corner -> top-left.
  Tensor x({1, 1, 2, 2});
  x.at(0, 0, 0, 1) = 7.0f;  // top-right
  const Tensor y = rotate90(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 7.0f);
}

TEST(AugmentTest, TransformsPreserveValueMultiset) {
  const Tensor x = numbered_chip(2, 2, 4);
  for (const Tensor& y :
       {flip_horizontal(x), flip_vertical(x), rotate90(x)}) {
    double sx = 0.0, sy = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      sx += x[i];
      sy += y[i];
    }
    EXPECT_DOUBLE_EQ(sx, sy);
  }
}

TEST(AugmentTest, RandomDihedralIsDeterministicPerSeed) {
  const Tensor x = numbered_chip(4, 2, 6);
  Rng r1(9), r2(9), r3(10);
  const Tensor a = random_dihedral(x, r1);
  const Tensor b = random_dihedral(x, r2);
  const Tensor c = random_dihedral(x, r3);
  bool same_ab = true, same_ac = true;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    same_ab &= a[i] == b[i];
    same_ac &= a[i] == c[i];
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(AugmentTest, DihedralExpansionProduces8Poses) {
  Tensor x = numbered_chip(3, 2, 4);
  std::vector<int> labels = {0, 1, 0};
  augment_dihedral(x, labels);
  EXPECT_EQ(x.dim(0), 24);
  ASSERT_EQ(labels.size(), 24u);
  // Labels replicate per source chip.
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(labels[static_cast<std::size_t>(8 + k)], 1);
  }
  // First pose of each chip is the original.
  const Tensor orig = numbered_chip(3, 2, 4);
  const std::int64_t chw = 2 * 4 * 4;
  for (std::int64_t i = 0; i < chw; ++i) {
    ASSERT_EQ(x[8 * chw + i], orig[chw + i]);  // chip 1, pose 0
  }
}

TEST(AugmentTest, DihedralPosesAreDistinct) {
  // For a generic chip the 8 dihedral poses are pairwise different.
  Tensor x = numbered_chip(1, 1, 3);
  std::vector<int> labels = {0};
  augment_dihedral(x, labels);
  const std::int64_t hw = 9;
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      bool same = true;
      for (std::int64_t i = 0; i < hw; ++i) {
        if (x[a * hw + i] != x[b * hw + i]) same = false;
      }
      EXPECT_FALSE(same) << "poses " << a << " and " << b;
    }
  }
}

TEST(AugmentTest, RejectsBadInput) {
  EXPECT_THROW(rotate90(Tensor({1, 1, 2, 3})), InvalidArgument);
  Tensor x({2, 1, 2, 2});
  std::vector<int> labels = {0};
  EXPECT_THROW(augment_dihedral(x, labels), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::geodata
