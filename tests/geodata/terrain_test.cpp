#include "dcnas/geodata/terrain.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dcnas::geodata {
namespace {

TEST(GridTest, BasicAccessAndStats) {
  Grid g(3, 4, 2.0f);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.size(), 12);
  g.at(2, 3) = 5.0f;
  g.at(0, 0) = -1.0f;
  EXPECT_FLOAT_EQ(g.min_value(), -1.0f);
  EXPECT_FLOAT_EQ(g.max_value(), 5.0f);
  EXPECT_NEAR(g.mean_value(), (2.0 * 10 + 5 - 1) / 12.0, 1e-9);
  EXPECT_TRUE(g.in_bounds(2, 3));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, -1));
}

TEST(GridTest, RejectsBadDimensions) {
  EXPECT_THROW(Grid(0, 4), InvalidArgument);
  EXPECT_THROW(Grid(4, -1), InvalidArgument);
  EXPECT_THROW(Grid().min_value(), InvalidArgument);
}

TEST(ValueNoiseTest, DeterministicAndBounded) {
  for (int i = 0; i < 500; ++i) {
    const double x = i * 0.37;
    const double y = i * 0.91;
    const double v = value_noise(x, y, 7);
    EXPECT_DOUBLE_EQ(v, value_noise(x, y, 7));
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ValueNoiseTest, DifferentSeedsDiffer) {
  int diffs = 0;
  for (int i = 0; i < 50; ++i) {
    if (value_noise(i * 0.7, i * 1.3, 1) != value_noise(i * 0.7, i * 1.3, 2))
      ++diffs;
  }
  EXPECT_GT(diffs, 45);
}

TEST(ValueNoiseTest, IsContinuous) {
  // Tiny input steps produce tiny output steps (smoothstep interpolation).
  const double base = value_noise(5.3, 8.7, 3);
  const double nudged = value_noise(5.3001, 8.7001, 3);
  EXPECT_NEAR(base, nudged, 1e-2);
}

TEST(FbmTest, MoreOctavesAddDetail) {
  // fbm with 1 octave equals raw value noise at the base frequency.
  const double one = fbm(10.0, 20.0, 5, 1, 0.05, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(one, value_noise(0.5, 1.0, mix_seed(5, 0)));
  const double many = fbm(10.0, 20.0, 5, 5, 0.05, 2.0, 0.5);
  EXPECT_NE(one, many);
  EXPECT_THROW(fbm(0, 0, 1, 0, 0.1, 2.0, 0.5), InvalidArgument);
}

TEST(SynthesizeDemTest, ElevationRangeFollowsOptions) {
  TerrainOptions opt;
  opt.height = 96;
  opt.width = 96;
  const Grid dem = synthesize_dem(opt, 42);
  EXPECT_EQ(dem.height(), 96);
  // Elevation stays within base ± relief ± tilt envelope.
  const double tilt_max = opt.regional_slope * (96 + 0.35 * 96);
  EXPECT_GT(dem.min_value(), opt.base_elevation_m - opt.relief_m - tilt_max - 1);
  EXPECT_LT(dem.max_value(), opt.base_elevation_m + opt.relief_m + 1);
  // Real relief appears (not flat).
  EXPECT_GT(dem.max_value() - dem.min_value(), opt.relief_m * 0.5);
}

TEST(SynthesizeDemTest, DeterministicPerSeed) {
  TerrainOptions opt;
  opt.height = 48;
  opt.width = 48;
  const Grid a = synthesize_dem(opt, 9);
  const Grid b = synthesize_dem(opt, 9);
  const Grid c = synthesize_dem(opt, 10);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
}

TEST(SlopeTest, FlatTerrainHasZeroSlope) {
  Grid flat(16, 16, 100.0f);
  const Grid s = slope_magnitude(flat);
  EXPECT_FLOAT_EQ(s.max_value(), 0.0f);
}

TEST(SlopeTest, RampHasConstantSlope) {
  Grid ramp(8, 8);
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 8; ++x) {
      ramp.at(y, x) = static_cast<float>(3 * x);
    }
  }
  const Grid s = slope_magnitude(ramp);
  EXPECT_NEAR(s.at(4, 4), 3.0f, 1e-5f);
  // Border uses one-sided halves.
  EXPECT_NEAR(s.at(4, 0), 1.5f, 1e-5f);
}

}  // namespace
}  // namespace dcnas::geodata
