#include "dcnas/geodata/hydrology.hpp"

#include <gtest/gtest.h>

#include "dcnas/geodata/terrain.hpp"

namespace dcnas::geodata {
namespace {

/// A tilted plane draining east (+x).
Grid east_ramp(std::int64_t n) {
  Grid g(n, n);
  for (std::int64_t y = 0; y < n; ++y) {
    for (std::int64_t x = 0; x < n; ++x) {
      g.at(y, x) = static_cast<float>(100 - x);
    }
  }
  return g;
}

TEST(FlowDirectionTest, RampFlowsEast) {
  const Grid dem = east_ramp(8);
  const auto dir = d8_flow_directions(dem);
  // Interior cells flow east (D8 index 0 = +x).
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 7; ++x) {
      EXPECT_EQ(dir[static_cast<std::size_t>(y * 8 + x)], 0)
          << "(" << y << "," << x << ")";
    }
    // Eastern border has no lower in-bounds neighbor -> outflow (-1).
    EXPECT_EQ(dir[static_cast<std::size_t>(y * 8 + 7)], -1);
  }
}

TEST(FlowDirectionTest, PitHasNoDirection) {
  Grid dem(3, 3, 10.0f);
  dem.at(1, 1) = 1.0f;  // a pit
  const auto dir = d8_flow_directions(dem);
  EXPECT_EQ(dir[4], -1);
  // All neighbors drain toward the pit center.
  EXPECT_EQ(dir[0], 1);  // SE
}

TEST(FlowAccumulationTest, RampAccumulatesLinearly) {
  const Grid dem = east_ramp(6);
  const Grid acc = flow_accumulation(dem);
  // Column x receives all cells to its west in the same row.
  for (std::int64_t y = 0; y < 6; ++y) {
    for (std::int64_t x = 0; x < 6; ++x) {
      EXPECT_FLOAT_EQ(acc.at(y, x), static_cast<float>(x + 1));
    }
  }
}

TEST(FlowAccumulationTest, MassIsConserved) {
  // Total accumulation at outflow cells (dir == -1) equals ... every cell
  // drains somewhere, so the sum over outflow cells' accumulation equals
  // the cell count only on a pit-free surface; instead check the weaker
  // invariant: every cell's accumulation >= 1 and <= total cells.
  TerrainOptions opt;
  opt.height = 64;
  opt.width = 64;
  const Grid dem = synthesize_dem(opt, 17);
  const Grid acc = flow_accumulation(dem);
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    const float a = acc.data()[static_cast<std::size_t>(i)];
    EXPECT_GE(a, 1.0f);
    EXPECT_LE(a, 64.0f * 64.0f);
  }
  // Channels exist: some cell gathers a substantial upstream area.
  EXPECT_GT(acc.max_value(), 50.0f);
}

TEST(FlowAccumulationTest, DownstreamNeverDecreasesAlongFlowPath) {
  TerrainOptions opt;
  opt.height = 48;
  opt.width = 48;
  const Grid dem = synthesize_dem(opt, 23);
  const Grid acc = flow_accumulation(dem);
  const auto dir = d8_flow_directions(dem);
  for (std::int64_t y = 0; y < 48; ++y) {
    for (std::int64_t x = 0; x < 48; ++x) {
      const int d = dir[static_cast<std::size_t>(y * 48 + x)];
      if (d < 0) continue;
      EXPECT_GE(acc.at(y + kD8dy[d], x + kD8dx[d]), acc.at(y, x));
    }
  }
}

TEST(ChannelMaskTest, ThresholdSelectsStreams) {
  const Grid dem = east_ramp(6);
  const Grid acc = flow_accumulation(dem);
  const Grid mask = channel_mask(acc, 4.0f);
  EXPECT_FLOAT_EQ(mask.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(mask.at(0, 4), 1.0f);
  EXPECT_THROW(channel_mask(acc, 0.0f), InvalidArgument);
}

TEST(CarveChannelsTest, LowersOnlyChannelCells) {
  const Grid dem = east_ramp(6);
  const Grid acc = flow_accumulation(dem);
  const Grid carved = carve_channels(dem, acc, 4.0f, 2.0f);
  EXPECT_FLOAT_EQ(carved.at(0, 2), dem.at(0, 2));  // below threshold
  EXPECT_LT(carved.at(0, 5), dem.at(0, 5));        // carved
  // Depth bounded by max_depth.
  EXPECT_GE(carved.at(0, 5), dem.at(0, 5) - 2.0f);
}

TEST(CarveChannelsTest, DepthGrowsWithAccumulation) {
  const Grid dem = east_ramp(8);
  const Grid acc = flow_accumulation(dem);
  const Grid carved = carve_channels(dem, acc, 3.0f, 2.0f);
  const float depth_small = dem.at(0, 3) - carved.at(0, 3);
  const float depth_large = dem.at(0, 7) - carved.at(0, 7);
  EXPECT_GT(depth_large, depth_small);
}

}  // namespace
}  // namespace dcnas::geodata
