#include "dcnas/geodata/kfold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dcnas/common/error.hpp"

namespace dcnas::geodata {
namespace {

std::vector<int> balanced_labels(int n) {
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 2;
  return labels;
}

TEST(KFoldTest, EverySampleValidatedExactlyOnce) {
  const auto labels = balanced_labels(103);
  const auto splits = stratified_kfold(labels, 5, 1);
  ASSERT_EQ(splits.size(), 5u);
  std::vector<int> seen(labels.size(), 0);
  for (const auto& s : splits) {
    for (auto i : s.val_indices) seen[static_cast<std::size_t>(i)]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(KFoldTest, TrainAndValArePartition) {
  const auto labels = balanced_labels(60);
  const auto splits = stratified_kfold(labels, 4, 2);
  for (const auto& s : splits) {
    EXPECT_EQ(s.train_indices.size() + s.val_indices.size(), labels.size());
    std::set<std::int64_t> train(s.train_indices.begin(),
                                 s.train_indices.end());
    for (auto v : s.val_indices) EXPECT_EQ(train.count(v), 0u);
  }
}

TEST(KFoldTest, StratificationPreservesBalance) {
  const auto labels = balanced_labels(200);
  const auto splits = stratified_kfold(labels, 5, 3);
  for (const auto& s : splits) {
    std::int64_t pos = 0;
    for (auto i : s.val_indices) pos += labels[static_cast<std::size_t>(i)];
    EXPECT_EQ(2 * pos, static_cast<std::int64_t>(s.val_indices.size()));
  }
}

TEST(KFoldTest, UnbalancedClassesStillStratified) {
  std::vector<int> labels;
  for (int i = 0; i < 90; ++i) labels.push_back(0);
  for (int i = 0; i < 10; ++i) labels.push_back(1);
  const auto splits = stratified_kfold(labels, 5, 4);
  for (const auto& s : splits) {
    std::int64_t pos = 0;
    for (auto i : s.val_indices) pos += labels[static_cast<std::size_t>(i)];
    EXPECT_EQ(pos, 2);  // 10 positives over 5 folds
    EXPECT_EQ(s.val_indices.size(), 20u);
  }
}

TEST(KFoldTest, DeterministicPerSeed) {
  const auto labels = balanced_labels(50);
  const auto a = stratified_kfold(labels, 5, 7);
  const auto b = stratified_kfold(labels, 5, 7);
  const auto c = stratified_kfold(labels, 5, 8);
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].val_indices, b[f].val_indices);
  }
  bool any_diff = false;
  for (std::size_t f = 0; f < a.size(); ++f) {
    if (a[f].val_indices != c[f].val_indices) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(KFoldTest, RejectsDegenerateInput) {
  EXPECT_THROW(stratified_kfold(balanced_labels(10), 1, 0), InvalidArgument);
  EXPECT_THROW(stratified_kfold(balanced_labels(3), 5, 0), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::geodata
