#include "dcnas/geodata/scene.hpp"

#include <gtest/gtest.h>

namespace dcnas::geodata {
namespace {

SceneOptions small_scene_options() {
  SceneOptions opt;
  opt.size = 160;
  return opt;
}

TEST(IndicesTest, VegetationAndWaterSignatures) {
  Grid nir(1, 3), red(1, 3), green(1, 3);
  // Vegetation: NIR >> RED -> NDVI near +1.
  nir.at(0, 0) = 0.6f;
  red.at(0, 0) = 0.06f;
  green.at(0, 0) = 0.15f;
  // Water: GREEN > NIR -> NDWI positive, NDVI negative-ish.
  nir.at(0, 1) = 0.04f;
  red.at(0, 1) = 0.10f;
  green.at(0, 1) = 0.22f;
  // Zero case.
  nir.at(0, 2) = 0.0f;
  red.at(0, 2) = 0.0f;
  green.at(0, 2) = 0.0f;
  const Grid v = ndvi(nir, red);
  const Grid w = ndwi(green, nir);
  EXPECT_GT(v.at(0, 0), 0.7f);
  EXPECT_LT(v.at(0, 1), 0.0f);
  EXPECT_GT(w.at(0, 1), 0.5f);
  EXPECT_LT(w.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(v.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(w.at(0, 2), 0.0f);
}

TEST(IndicesTest, BoundedInMinusOneOne) {
  Grid a(4, 4, 0.5f), b(4, 4, 0.1f);
  const Grid x = ndvi(a, b);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x.data()[static_cast<std::size_t>(i)], -1.0f);
    EXPECT_LE(x.data()[static_cast<std::size_t>(i)], 1.0f);
  }
}

TEST(RegionCatalogTest, MatchesTable1) {
  const auto& catalog = region_catalog();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog[0].name, "Nebraska");
  EXPECT_EQ(catalog[0].true_samples, 2022);
  EXPECT_EQ(catalog[1].name, "Illinois");
  EXPECT_DOUBLE_EQ(catalog[1].dem_resolution_m, 0.3);
  EXPECT_EQ(catalog[1].total_samples(), 2022);
  EXPECT_EQ(catalog[2].name, "North Dakota");
  EXPECT_EQ(catalog[2].true_samples, 613);
  EXPECT_DOUBLE_EQ(catalog[2].dem_resolution_m, 0.61);
  EXPECT_EQ(catalog[3].name, "California");
  EXPECT_EQ(catalog[3].false_samples, 2388);
  EXPECT_EQ(catalog_total_samples(), 12068);
  for (const auto& r : catalog) {
    EXPECT_EQ(r.true_samples, r.false_samples) << "balanced per Table 1";
    EXPECT_NE(r.ortho_source.find("NAIP"), std::string::npos);
  }
}

TEST(SceneTest, ProducesCrossings) {
  const GeoScene scene = synthesize_scene(small_scene_options(), 101);
  EXPECT_GT(scene.crossings.size(), 0u);
  for (const auto& c : scene.crossings) {
    EXPECT_TRUE(scene.dem.in_bounds(c.y, c.x));
    // Crossings sit on (pre-road) channels.
    EXPECT_FLOAT_EQ(scene.channels.at(c.y, c.x), 1.0f);
    // ... and under the road embankment.
    EXPECT_FLOAT_EQ(scene.road_mask.at(c.y, c.x), 1.0f);
  }
}

TEST(SceneTest, EmbankmentRaisesDemOverChannel) {
  const SceneOptions opt = small_scene_options();
  const GeoScene scene = synthesize_scene(opt, 101);
  ASSERT_FALSE(scene.crossings.empty());
  // The crossing cell was carved then raised by the ~1.6 m embankment: it
  // must sit clearly above immediately-adjacent off-road channel cells
  // (within 5 cells, where natural relief is small compared to the bank).
  int verified = 0;
  for (const auto& site : scene.crossings) {
    for (std::int64_t dy = -5; dy <= 5; ++dy) {
      for (std::int64_t dx = -5; dx <= 5; ++dx) {
        const std::int64_t ny = site.y + dy;
        const std::int64_t nx = site.x + dx;
        if (!scene.dem.in_bounds(ny, nx)) continue;
        if (scene.channels.at(ny, nx) > 0.5f &&
            scene.road_mask.at(ny, nx) < 0.5f) {
          if (scene.dem.at(site.y, site.x) > scene.dem.at(ny, nx) + 0.5f) {
            ++verified;
          }
          dy = 6;  // one neighbour per crossing is enough
          break;
        }
      }
    }
  }
  // Most crossings show the raised-bar signature.
  EXPECT_GT(verified, static_cast<int>(scene.crossings.size()) / 2);
}

TEST(SceneTest, DeterministicPerSeed) {
  const GeoScene a = synthesize_scene(small_scene_options(), 7);
  const GeoScene b = synthesize_scene(small_scene_options(), 7);
  EXPECT_EQ(a.dem.data(), b.dem.data());
  EXPECT_EQ(a.crossings.size(), b.crossings.size());
  const GeoScene c = synthesize_scene(small_scene_options(), 8);
  EXPECT_NE(a.dem.data(), c.dem.data());
}

TEST(SceneTest, OrthoBandsAreReflectances) {
  const GeoScene scene = synthesize_scene(small_scene_options(), 11);
  for (const Grid* band :
       {&scene.ortho.red, &scene.ortho.green, &scene.ortho.blue,
        &scene.ortho.nir}) {
    EXPECT_GE(band->min_value(), 0.0f);
    EXPECT_LE(band->max_value(), 1.0f);
  }
  // NDVI/NDWI layers bounded.
  EXPECT_GE(scene.ndvi_layer.min_value(), -1.0f);
  EXPECT_LE(scene.ndvi_layer.max_value(), 1.0f);
}

TEST(SceneTest, RoadsLookGrayInOrtho) {
  const GeoScene scene = synthesize_scene(small_scene_options(), 13);
  // Find a road pixel; its R and G must be nearly equal (gray).
  for (std::int64_t y = 0; y < scene.dem.height(); ++y) {
    for (std::int64_t x = 0; x < scene.dem.width(); ++x) {
      if (scene.road_mask.at(y, x) > 0.5f) {
        EXPECT_NEAR(scene.ortho.red.at(y, x), scene.ortho.green.at(y, x),
                    1e-4f);
        return;
      }
    }
  }
  FAIL() << "no road pixels generated";
}

TEST(SceneTest, RejectsTinyScene) {
  SceneOptions opt;
  opt.size = 16;
  EXPECT_THROW(synthesize_scene(opt, 1), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::geodata
