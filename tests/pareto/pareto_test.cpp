#include "dcnas/pareto/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcnas/common/error.hpp"
#include "dcnas/common/rng.hpp"

namespace dcnas::pareto {
namespace {

TEST(DominanceTest, WeakDominanceSemantics) {
  const Objectives a{95.0, 10.0, 11.0};
  const Objectives b{94.0, 12.0, 11.0};  // worse acc, worse lat, equal mem
  EXPECT_TRUE(dominates(a, b, DominanceMode::kWeak));
  EXPECT_FALSE(dominates(b, a, DominanceMode::kWeak));
  // Equal points do not dominate each other.
  EXPECT_FALSE(dominates(a, a, DominanceMode::kWeak));
  // Trade-off points are incomparable.
  const Objectives c{96.0, 20.0, 11.0};
  EXPECT_FALSE(dominates(a, c, DominanceMode::kWeak));
  EXPECT_FALSE(dominates(c, a, DominanceMode::kWeak));
}

TEST(DominanceTest, StrictAllRequiresStrictEverywhere) {
  const Objectives a{95.0, 10.0, 11.0};
  const Objectives b{94.0, 12.0, 11.0};
  // Memory tie blocks strict-all domination — exactly why the paper's
  // Table 4 keeps its weakly-dominated rows 4/5 pair.
  EXPECT_FALSE(dominates(a, b, DominanceMode::kStrictAll));
  const Objectives c{94.0, 12.0, 12.0};
  EXPECT_TRUE(dominates(a, c, DominanceMode::kStrictAll));
}

TEST(NonDominatedTest, SimpleFront) {
  const std::vector<Objectives> pts = {
      {96.0, 8.0, 11.0},   // best everywhere
      {95.0, 9.0, 12.0},   // dominated by 0
      {97.0, 20.0, 11.5},  // acc/lat trade-off with 0
      {90.0, 30.0, 40.0},  // dominated
  };
  const auto front = non_dominated_indices(pts, DominanceMode::kWeak);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2}));
}

TEST(NonDominatedTest, AllEqualPointsSurvive) {
  const std::vector<Objectives> pts(4, Objectives{90.0, 10.0, 10.0});
  EXPECT_EQ(non_dominated_indices(pts, DominanceMode::kWeak).size(), 4u);
  EXPECT_EQ(non_dominated_indices(pts, DominanceMode::kStrictAll).size(), 4u);
}

TEST(NonDominatedTest, EmptyInput) {
  EXPECT_TRUE(non_dominated_indices({}, DominanceMode::kWeak).empty());
}

TEST(FastSortTest, LayersAreConsistentWithFilter) {
  Rng rng(5);
  std::vector<Objectives> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(80.0, 97.0), rng.uniform(8.0, 250.0),
                   rng.uniform(11.0, 45.0)});
  }
  const auto fronts = fast_non_dominated_sort(pts, DominanceMode::kWeak);
  ASSERT_FALSE(fronts.empty());
  EXPECT_EQ(fronts.front(), non_dominated_indices(pts, DominanceMode::kWeak));
  // Every point appears in exactly one layer.
  std::vector<int> seen(pts.size(), 0);
  for (const auto& f : fronts) {
    for (auto i : f) seen[i]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  // Layer k+1 points are each dominated by someone in layer k.
  for (std::size_t layer = 1; layer < fronts.size(); ++layer) {
    for (auto q : fronts[layer]) {
      bool dominated = false;
      for (auto p : fronts[layer - 1]) {
        if (dominates(pts[p], pts[q], DominanceMode::kWeak)) dominated = true;
      }
      EXPECT_TRUE(dominated);
    }
  }
}

TEST(NormalizeTest, MapsToUnitCube) {
  const std::vector<Objectives> pts = {
      {90.0, 10.0, 11.0}, {95.0, 30.0, 44.0}, {92.5, 20.0, 27.5}};
  const auto n = normalize(pts);
  EXPECT_DOUBLE_EQ(n[0].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(n[1].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(n[2].accuracy, 0.5);
  EXPECT_DOUBLE_EQ(n[0].latency, 0.0);
  EXPECT_DOUBLE_EQ(n[1].memory, 1.0);
}

TEST(NormalizeTest, DegenerateRangeMapsToHalf) {
  const std::vector<Objectives> pts = {{90.0, 10.0, 11.0}, {95.0, 20.0, 11.0}};
  const auto n = normalize(pts);
  EXPECT_DOUBLE_EQ(n[0].memory, 0.5);
  EXPECT_DOUBLE_EQ(n[1].memory, 0.5);
  EXPECT_THROW(normalize({}), InvalidArgument);
}

TEST(CrowdingTest, BoundariesAreInfinite) {
  const std::vector<Objectives> pts = {
      {90.0, 30.0, 20.0}, {93.0, 20.0, 20.0}, {96.0, 10.0, 20.0}};
  const std::vector<std::size_t> front = {0, 1, 2};
  const auto d = crowding_distances(pts, front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[2]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_GT(d[1], 0.0);
}

TEST(CrowdingTest, TwoPointFrontAllInfinite) {
  const std::vector<Objectives> pts = {{90.0, 30.0, 20.0}, {96.0, 10.0, 22.0}};
  const auto d = crowding_distances(pts, {0, 1});
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[1]));
}

TEST(CrowdingTest, SparsePointsScoreHigher) {
  // Points evenly spread except one crowded pair.
  const std::vector<Objectives> pts = {{90.0, 50.0, 20.0},
                                       {92.0, 40.0, 20.0},
                                       {92.2, 39.0, 20.0},
                                       {96.0, 10.0, 20.0}};
  const auto d = crowding_distances(pts, {0, 1, 2, 3});
  EXPECT_LT(d[1], d[2]);  // 1 squeezed between 0.2-wide gap and big gap
}

TEST(HypervolumeTest, SingleBoxVolume) {
  const Objectives ref{90.0, 100.0, 50.0};
  const std::vector<Objectives> pts = {{95.0, 60.0, 30.0}};
  // gains: acc 5, lat 40, mem 20 -> 4000.
  EXPECT_NEAR(hypervolume(pts, ref), 5.0 * 40.0 * 20.0, 1e-9);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  const Objectives ref{90.0, 100.0, 50.0};
  const std::vector<Objectives> pts = {{95.0, 60.0, 30.0},
                                       {94.0, 70.0, 35.0}};
  EXPECT_NEAR(hypervolume(pts, ref), 4000.0, 1e-9);
}

TEST(HypervolumeTest, UnionOfOverlappingBoxes) {
  const Objectives ref{0.0, 10.0, 10.0};
  // Two complementary points: (acc 1, lat 0, mem 5) and (acc 1, lat 5, mem 0).
  const std::vector<Objectives> pts = {{1.0, 0.0, 5.0}, {1.0, 5.0, 0.0}};
  // Union area in (lat-slack, mem-slack): 10x5 + 5x10 - 5x5 = 75; x z 1.
  EXPECT_NEAR(hypervolume(pts, ref), 75.0, 1e-9);
}

TEST(HypervolumeTest, MonotoneInAddedPoints) {
  Rng rng(3);
  const Objectives ref{70.0, 300.0, 60.0};
  std::vector<Objectives> pts;
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.uniform(75.0, 97.0), rng.uniform(10.0, 250.0),
                   rng.uniform(11.0, 45.0)});
    const double hv = hypervolume(pts, ref);
    EXPECT_GE(hv, prev - 1e-9);
    prev = hv;
  }
}

TEST(HypervolumeTest, RejectsPointOutsideReferenceOctant) {
  const Objectives ref{90.0, 100.0, 50.0};
  EXPECT_THROW(hypervolume({{85.0, 60.0, 30.0}}, ref), InvalidArgument);
  EXPECT_THROW(hypervolume({{95.0, 160.0, 30.0}}, ref), InvalidArgument);
  EXPECT_DOUBLE_EQ(hypervolume({}, ref), 0.0);
}

}  // namespace
}  // namespace dcnas::pareto
