#include "dcnas/pareto/export.hpp"

#include <gtest/gtest.h>

#include "dcnas/common/error.hpp"

namespace dcnas::pareto {
namespace {

std::vector<Objectives> sample_points() {
  return {{96.0, 8.0, 11.0},
          {90.0, 30.0, 44.0},
          {93.0, 15.0, 25.0},
          {92.0, 28.0, 43.0}};
}

TEST(ScatterCsvTest, MarksFrontAndNormalizes) {
  const auto pts = sample_points();
  const auto front = non_dominated_indices(pts, DominanceMode::kWeak);
  const CsvTable t = scatter_csv(pts, front);
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.at(0, "non_dominated"), "1");
  EXPECT_EQ(t.at(1, "non_dominated"), "0");
  EXPECT_DOUBLE_EQ(t.at_double(0, "accuracy_norm"), 1.0);
  EXPECT_DOUBLE_EQ(t.at_double(0, "latency_norm"), 0.0);
  EXPECT_DOUBLE_EQ(t.at_double(1, "memory_norm"), 1.0);
  EXPECT_NEAR(t.at_double(2, "accuracy"), 93.0, 1e-9);
}

TEST(AsciiScatterTest, RendersAllProjections) {
  const auto pts = sample_points();
  const auto front = non_dominated_indices(pts, DominanceMode::kWeak);
  for (const char* proj :
       {"latency-accuracy", "memory-accuracy", "latency-memory"}) {
    const std::string s = ascii_scatter(pts, front, proj);
    EXPECT_NE(s.find('#'), std::string::npos) << proj;
    EXPECT_NE(s.find('.'), std::string::npos) << proj;
    EXPECT_NE(s.find(proj), std::string::npos);
  }
}

TEST(AsciiScatterTest, RejectsBadInputs) {
  const auto pts = sample_points();
  EXPECT_THROW(ascii_scatter(pts, {}, "upside-down"), InvalidArgument);
  EXPECT_THROW(ascii_scatter({}, {}, "latency-accuracy"), InvalidArgument);
  EXPECT_THROW(ascii_scatter(pts, {}, "latency-accuracy", 4, 2),
               InvalidArgument);
}

TEST(RadarTest, CsvSharesAxesAcrossRows) {
  std::vector<RadarRow> rows = {
      {"model A", {{"accuracy", 1.0}, {"latency", 0.2}}},
      {"model B", {{"accuracy", 0.4}, {"latency", 0.9}}},
  };
  const CsvTable t = radar_csv(rows);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.header()[1], "accuracy");
  EXPECT_DOUBLE_EQ(t.at_double(1, "latency"), 0.9);
}

TEST(RadarTest, CsvRejectsMismatchedAxes) {
  std::vector<RadarRow> rows = {
      {"A", {{"accuracy", 1.0}}},
      {"B", {{"latency", 0.5}}},
  };
  EXPECT_THROW(radar_csv(rows), InvalidArgument);
  EXPECT_THROW(radar_csv({}), InvalidArgument);
}

TEST(RadarTest, TextBarsScaleWithValue) {
  std::vector<RadarRow> rows = {
      {"M", {{"full", 1.0}, {"half", 0.5}, {"empty", 0.0}}}};
  const std::string s = radar_text(rows, 10);
  EXPECT_NE(s.find("=========="), std::string::npos);
  EXPECT_NE(s.find("[=====     ]"), std::string::npos);
  EXPECT_NE(s.find("[          ]"), std::string::npos);
  EXPECT_NE(s.find("M"), std::string::npos);
}

TEST(RadarTest, TextRejectsUnnormalizedValues) {
  std::vector<RadarRow> rows = {{"M", {{"bad", 1.5}}}};
  EXPECT_THROW(radar_text(rows), InvalidArgument);
}

}  // namespace
}  // namespace dcnas::pareto
