/// Serving walkthrough: train a small drainage classifier, deploy it into a
/// ModelRegistry as a .dcnx artifact, and put a concurrent inference Server
/// in front of it — dynamic batching, multi-threaded submitters, per-model
/// metrics, hot-swap, and a graceful drain. This is the runtime the
/// hardware-aware NAS objectives ultimately answer to: measured serving
/// latency under real traffic, not just predicted kernel latency.
///
/// Usage: ./examples/serve_demo [--epochs 2] [--requests 64] [--workers 2]
///                              [--max-batch 8] [--max-delay-us 2000]

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "dcnas/common/cli.hpp"
#include "dcnas/common/profiler.hpp"
#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"
#include "dcnas/serve/server.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int epochs = static_cast<int>(args.get_int("epochs", 2));
  const int requests = static_cast<int>(args.get_int("requests", 64));
  serve::ServerOptions sopt;
  sopt.num_workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sopt.batch.max_batch = args.get_int("max-batch", 8);
  sopt.batch.max_delay =
      std::chrono::microseconds(args.get_int("max-delay-us", 2000));

  // 1. Train a small model and export the deployable artifact.
  std::printf("=== serve_demo: train -> registry -> batched serving ===\n");
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / 128.0;
  dopt.chip_size = 24;
  dopt.scene_size = 160;
  dopt.channels = 5;
  const auto ds = geodata::build_dataset(dopt);

  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  Rng rng(11);
  nn::ConfigurableResNet model(cfg.to_resnet_config(), rng);
  nn::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = cfg.batch;
  topt.lr = 0.02;
  nn::fit(model, ds.images, ds.labels, topt);
  model.set_training(false);

  graph::GraphExecutor exec(
      graph::build_resnet_graph(cfg.to_resnet_config(), dopt.chip_size),
      model);
  exec.fold_batchnorm();
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_demo.dcnx").string();
  graph::save_model(exec, path);

  // 2. Registry: load the artifact like a model server would at startup.
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->load("drainage", path);
  std::printf("registry: loaded 'drainage' v%d from %s\n",
              registry->version("drainage"), path.c_str());

  // 3. Serve concurrent traffic from multiple submitter threads.
  serve::Server server(registry, sopt);
  const auto reference = registry->get("drainage");
  std::vector<Tensor> inputs;
  Rng request_rng(99);
  for (int i = 0; i < requests; ++i) {
    inputs.push_back(Tensor::rand_uniform({1, 5, dopt.chip_size,
                                           dopt.chip_size},
                                          request_rng, -1.0f, 1.0f));
  }
  std::vector<std::future<Tensor>> futures(
      static_cast<std::size_t>(requests));
  const int submitters = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < requests; i += submitters) {
        futures[static_cast<std::size_t>(i)] =
            server.submit("drainage", inputs[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& th : threads) th.join();

  int mismatches = 0;
  for (int i = 0; i < requests; ++i) {
    const Tensor got = futures[static_cast<std::size_t>(i)].get();
    const Tensor want = reference->run(inputs[static_cast<std::size_t>(i)]);
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      if (got[j] != want[j]) ++mismatches;
    }
  }
  std::printf("%d requests from %d threads: %d logit mismatches vs direct "
              "execution %s\n", requests, submitters, mismatches,
              mismatches == 0 ? "(bit-exact)" : "(BUG!)");

  // 4. Hot-swap to the unfolded executor (same weights, pre-fold compute
  // path) without stopping the server.
  graph::GraphExecutor unfolded(
      graph::build_resnet_graph(cfg.to_resnet_config(), dopt.chip_size),
      model);
  registry->register_model("drainage", std::move(unfolded));
  const Tensor swapped =
      server.submit("drainage", inputs.front()).get();
  std::printf("hot-swapped to v%d mid-serving; first logit now %.4f\n",
              registry->version("drainage"), swapped[0]);

  // 5. Drain and report.
  server.shutdown();
  std::printf("\nserving metrics after graceful drain:\n%s\n",
              server.stats_report().c_str());
  std::printf("profiler phases:\n%s\n",
              Profiler::global().report().c_str());
  std::filesystem::remove(path);
  return 0;
}
