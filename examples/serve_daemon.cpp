/// serve_daemon — the deployed serving process: loads (or trains) a
/// drainage model, stands up a replicated Server behind the length-prefixed
/// wire protocol, and serves external clients over a POSIX socket until
/// interrupted. This is the front door the paper's resource-limited-device
/// story ends at: any process — the load generator, a field data pipeline,
/// an integration test — can submit chips and receive score rows without
/// linking dcnas.
///
/// Usage:
///   ./examples/serve_daemon --unix /tmp/dcnas.sock          # unix socket
///   ./examples/serve_daemon --port 7171                     # tcp loopback
///   ./examples/serve_daemon --model path/to/model.dcnx      # skip training
///   ./examples/serve_daemon --self-test 32                  # in-process
///       client sends 32 requests over the socket, verifies them against
///       direct execution, prints stats, and exits (used by docs/CI smoke).
/// Other knobs: --replicas N --workers N --max-batch N --max-delay-us N
///              --deadline-us N (self-test SLO tag) --epochs N

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "dcnas/common/cli.hpp"
#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"
#include "dcnas/serve/wire.hpp"

using namespace dcnas;

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

/// Trains the small drainage classifier and saves it as a .dcnx artifact.
std::string train_artifact(int epochs, std::int64_t chip_size) {
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / 128.0;
  dopt.chip_size = chip_size;
  dopt.scene_size = 160;
  dopt.channels = 5;
  const auto ds = geodata::build_dataset(dopt);

  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  Rng rng(11);
  nn::ConfigurableResNet model(cfg.to_resnet_config(), rng);
  nn::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = cfg.batch;
  topt.lr = 0.02;
  nn::fit(model, ds.images, ds.labels, topt);
  model.set_training(false);

  graph::GraphExecutor exec(
      graph::build_resnet_graph(cfg.to_resnet_config(), chip_size), model);
  exec.fold_batchnorm();
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_daemon.dcnx").string();
  graph::save_model(exec, path);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model_path = args.get("model", "");
  const std::string unix_path = args.get("unix", "");
  const auto tcp_port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const int self_test = static_cast<int>(args.get_int("self-test", 0));
  const auto deadline_us =
      static_cast<std::uint32_t>(args.get_int("deadline-us", 0));

  serve::ServerOptions sopt;
  sopt.num_replicas = static_cast<std::size_t>(args.get_int("replicas", 2));
  sopt.num_workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sopt.batch.max_batch = args.get_int("max-batch", 8);
  sopt.batch.max_delay =
      std::chrono::microseconds(args.get_int("max-delay-us", 2000));

  constexpr std::int64_t kChipSize = 24;
  std::string path = model_path;
  bool temp_artifact = false;
  if (path.empty()) {
    std::printf("serve_daemon: no --model given, training a small one...\n");
    path = train_artifact(static_cast<int>(args.get_int("epochs", 1)),
                          kChipSize);
    temp_artifact = true;
  }

  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->load("drainage", path);
  if (temp_artifact) std::filesystem::remove(path);
  std::printf("serve_daemon: loaded 'drainage' v%d (%zu replica(s) x %zu "
              "worker(s), max_batch %lld)\n",
              registry->version("drainage"), sopt.num_replicas,
              sopt.num_workers, static_cast<long long>(sopt.batch.max_batch));

  serve::Server server(registry, sopt);

  serve::WireServerOptions wopt;
  if (!unix_path.empty()) {
    wopt.unix_path = unix_path;
  } else if (tcp_port != 0 || self_test == 0) {
    wopt.tcp_port = tcp_port;  // 0 = ephemeral
  } else {
    wopt.unix_path = (std::filesystem::temp_directory_path() /
                      "serve_daemon_selftest.sock").string();
  }
  serve::WireServer wire(server, wopt);
  if (!wopt.unix_path.empty()) {
    std::printf("serve_daemon: listening on unix socket %s\n",
                wopt.unix_path.c_str());
  } else {
    std::printf("serve_daemon: listening on 127.0.0.1:%u\n", wire.port());
  }

  if (self_test > 0) {
    // Drive the server as an external client would: over the socket, then
    // verify every row against direct execution of the registered model.
    const auto reference = registry->snapshot("drainage");
    serve::WireClient client =
        wopt.unix_path.empty()
            ? serve::WireClient::connect_tcp("127.0.0.1", wire.port())
            : serve::WireClient::connect_unix(wopt.unix_path);
    Rng rng(99);
    int mismatches = 0, rejected = 0;
    for (int i = 0; i < self_test; ++i) {
      const Tensor input = Tensor::rand_uniform(
          {1, 5, kChipSize, kChipSize}, rng, -1.0f, 1.0f);
      const serve::WireResponse r =
          client.infer_raw("drainage", input, deadline_us);
      if (r.status != serve::WireStatus::kOk) {
        ++rejected;
        std::printf("  request %d: %s (%s)\n", i,
                    serve::to_string(r.status), r.message.c_str());
        continue;
      }
      const Tensor want = reference.plan != nullptr
                              ? reference.plan->run(input)
                              : reference.exec->run(input);
      for (std::int64_t j = 0; j < want.numel(); ++j) {
        if (r.output[j] != want[j]) ++mismatches;
      }
    }
    std::printf("self-test: %d requests over the wire, %d rejected, %d logit "
                "mismatches vs direct execution %s\n",
                self_test, rejected, mismatches,
                mismatches == 0 ? "(bit-exact)" : "(BUG!)");
    std::printf("\n%s\n", server.stats_report().c_str());
    wire.stop();
    server.shutdown();
    return mismatches == 0 ? 0 : 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("serve_daemon: serving (SIGINT to stop)\n");
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\nserve_daemon: draining...\n%s\n",
              server.stats_report().c_str());
  wire.stop();
  server.shutdown();
  return 0;
}
