/// Deployment walkthrough: train the Pareto-winning architecture for real,
/// fold BatchNorm for inference, serialize the .dcnx model file, reload it
/// without the training stack, and verify the deployed artifact — the
/// last mile the paper's "deployment in resource-constrained environments"
/// motivation implies.
///
/// Usage: ./examples/deploy_model [--epochs 6] [--out model.dcnx]

#include <cstdio>
#include <filesystem>

#include "dcnas/common/cli.hpp"
#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/graph/serialize.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int epochs = static_cast<int>(args.get_int("epochs", 6));
  const std::string out_path = args.get("out", "drainage_winner.dcnx");

  // 1. Data (small synthetic corpus) + the Table-4 winner architecture.
  std::printf("=== deploy_model: train -> fold -> serialize -> verify ===\n");
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / 128.0;
  dopt.chip_size = 24;
  dopt.scene_size = 160;
  dopt.channels = 5;
  const auto ds = geodata::build_dataset(dopt);
  std::printf("dataset: %lld chips of 24px\n",
              static_cast<long long>(ds.size()));

  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  cfg.kernel_size = 3;
  cfg.padding = 1;
  Rng rng(11);
  nn::ConfigurableResNet model(cfg.to_resnet_config(), rng);

  // 2. Train.
  nn::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = cfg.batch;
  topt.lr = 0.02;
  const auto fit_result = nn::fit(model, ds.images, ds.labels, topt);
  const double train_acc = nn::evaluate_accuracy(model, ds.images, ds.labels);
  std::printf("trained %d epochs: final loss %.3f, accuracy %.2f%%\n", epochs,
              fit_result.epoch_loss.back(), 100.0 * train_acc);

  // 3. Export to the graph runtime and fold BatchNorm.
  model.set_training(false);
  const auto g = graph::build_resnet_graph(cfg.to_resnet_config(),
                                           dopt.chip_size);
  graph::GraphExecutor exec(g, model);
  exec.fold_batchnorm();
  std::printf("folded %d BatchNorm layers into their convolutions\n",
              exec.folded_batchnorms());

  // 4. Serialize + reload without the nn module.
  const std::int64_t bytes = graph::save_model(exec, out_path);
  std::printf("wrote %s: %.2f MB on disk (size-model estimate %.2f MB — the "
              "paper's memory objective)\n",
              out_path.c_str(), static_cast<double>(bytes) / 1e6,
              graph::model_memory_mb(g));
  const graph::GraphExecutor deployed = graph::load_model(out_path);

  // 5. Verify the deployed artifact agrees with the trained model.
  std::vector<std::int64_t> probe_idx = {0, 1, 2, 3};
  const Tensor probe = nn::gather_batch(ds.images, probe_idx);
  const Tensor from_model = model.forward(probe);
  const Tensor from_file = deployed.run(probe);
  double max_diff = 0.0;
  for (std::int64_t i = 0; i < from_model.numel(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(from_model[i]) -
                                           from_file[i]));
  }
  std::printf("deployed-vs-trained max logit difference: %.2e %s\n", max_diff,
              max_diff < 1e-2 ? "(verified)" : "(MISMATCH!)");

  // 6. Edge latency of the deployed architecture at full resolution.
  const auto pred = latency::NnMeter::shared().predict_graph(
      graph::build_resnet_graph(cfg.to_resnet_config()));
  std::printf("predicted deployment latency (224x224): mean %.2f ms, std "
              "%.2f ms across 4 devices\n", pred.mean_ms, pred.std_ms);
  std::filesystem::remove(out_path);
  return 0;
}
