/// dcnas_lint: static analysis of a model graph from the command line.
///
/// Graph modes:
///   ./examples/dcnas_lint model.dcnx            lint a serialized artifact
///   ./examples/dcnas_lint --config <key>        lint a search-space point,
///                                               e.g. --config ch5_k3_s1_p1
///                                               fields: chN kN sN pN poolN
///                                               pkN psN wN (any order,
///                                               missing fields keep the
///                                               Table-4 anchor defaults)
/// Plan modes (compile + statically verify the *compiled plan*):
///   ./examples/dcnas_lint --plan model.dcnx     verify the plan compiled
///                                               from a .dcnx artifact
///   ./examples/dcnas_lint --plan --config <key> same, for a lattice point
///   ./examples/dcnas_lint --plan --sweep        compile + verify every
///                                               unique model in the full
///                                               1,728-point lattice
///
/// Prints every diagnostic of the standard verifier pipeline (errors and
/// warnings) and exits 1 when the subject has errors, 0 when clean — so CI
/// can lint .dcnx artifacts (and their compiled plans) the way clang-tidy
/// lints the sources. Unlike parse_model (which rejects at the first failed
/// verification), the lint path parses the file verbatim and reports *all*
/// findings.

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "dcnas/analysis/plan_verifier.hpp"
#include "dcnas/analysis/verifier.hpp"
#include "dcnas/common/cli.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/resnet.hpp"
#include "dcnas/plan/compiler.hpp"

using namespace dcnas;

namespace {

/// Parses "ch5_k3_s1_p1_pool0_pk2_ps2_w64"-style keys (the lattice_key()
/// vocabulary) into a TrialConfig; unknown fields are rejected.
nas::TrialConfig parse_config_key(const std::string& key) {
  nas::TrialConfig cfg;
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t end = key.find('_', pos);
    if (end == std::string::npos) end = key.size();
    const std::string field = key.substr(pos, end - pos);
    pos = end + 1;
    auto value_after = [&](std::size_t prefix_len) {
      return std::stoi(field.substr(prefix_len));
    };
    if (field.rfind("ch", 0) == 0) {
      cfg.channels = value_after(2);
    } else if (field.rfind("pool", 0) == 0) {
      cfg.pool_choice = value_after(4);
    } else if (field.rfind("pk", 0) == 0) {
      cfg.kernel_size_pool = value_after(2);
    } else if (field.rfind("ps", 0) == 0) {
      cfg.stride_pool = value_after(2);
    } else if (field.rfind('b', 0) == 0) {
      cfg.batch = value_after(1);
    } else if (field.rfind('k', 0) == 0) {
      cfg.kernel_size = value_after(1);
    } else if (field.rfind('s', 0) == 0) {
      cfg.stride = value_after(1);
    } else if (field.rfind('p', 0) == 0) {
      cfg.padding = value_after(1);
    } else if (field.rfind('w', 0) == 0) {
      cfg.initial_output_feature = value_after(1);
    } else {
      throw InvalidArgument("unknown config field '" + field + "' in --config");
    }
  }
  return cfg;
}

graph::ModelGraph load_graph(const CliArgs& args, std::string& subject) {
  if (args.has("config")) {
    const nas::TrialConfig cfg = parse_config_key(args.get("config", ""));
    subject = "search-space config " + cfg.lattice_key();
    return graph::build_resnet_graph(cfg.to_resnet_config());
  }
  DCNAS_CHECK(!args.positional().empty(),
              "usage: dcnas_lint <model.dcnx> | --config <lattice key>");
  const std::string& path = args.positional().front();
  subject = path;
  std::ifstream in(path, std::ios::binary);
  DCNAS_CHECK(in.good(), "cannot open model file: " + path);
  const std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return graph::parse_model_graph(bytes);
}

/// Builds a weight-bearing executor for a lattice point: fresh weights from
/// a fixed seed (lint verifies structure and folding consistency, not
/// accuracy, so any concrete weights do).
graph::GraphExecutor executor_for_config(const nas::TrialConfig& cfg) {
  const nn::ResNetConfig rc = cfg.to_resnet_config();
  Rng rng(17);
  nn::ConfigurableResNet model(rc, rng);
  model.set_training(false);
  return graph::GraphExecutor(graph::build_resnet_graph(rc), model);
}

/// Compiles \p exec's plan and prints the PlanVerifier's report. Returns the
/// error count.
std::size_t lint_plan(const graph::GraphExecutor& exec,
                      const std::string& subject, bool verbose) {
  const plan::CompiledPlan plan = plan::compile_plan(exec);
  const analysis::PlanVerifier verifier = analysis::PlanVerifier::standard();
  const analysis::VerifyResult result = verifier.verify(plan, exec);
  if (verbose) {
    std::printf("dcnas_lint: compiled plan of %s\n", subject.c_str());
    std::printf("  %zu steps, %zu slots, %lld arena floats/sample\n",
                plan.steps.size(), plan.slots.size(),
                static_cast<long long>(plan.arena_size));
    for (const auto& name : verifier.pass_names()) {
      std::printf("  pass: %s\n", name.c_str());
    }
  }
  if (result.diagnostics.empty()) {
    if (verbose) std::printf("clean: no diagnostics\n");
    return 0;
  }
  if (!verbose) std::printf("dcnas_lint: compiled plan of %s\n",
                            subject.c_str());
  std::printf("%s", result.to_string().c_str());
  std::printf("%zu error(s), %zu warning(s)\n", result.error_count(),
              result.warning_count());
  return result.error_count();
}

/// --plan --sweep: every lattice point, deduplicated to unique models (batch
/// never affects the plan; pool_choice=0 collapses the pool geometry axes).
int sweep_plans() {
  const auto all = nas::SearchSpace::enumerate_all();
  std::set<std::string> seen;
  std::size_t errors = 0;
  std::size_t unique = 0;
  for (const auto& cfg : all) {
    const std::string key =
        "ch" + std::to_string(cfg.channels) + "_" + cfg.canonical_arch_key();
    if (!seen.insert(key).second) continue;
    ++unique;
    errors += lint_plan(executor_for_config(cfg), cfg.lattice_key(),
                        /*verbose=*/false);
  }
  std::printf(
      "dcnas_lint: plan sweep over %zu lattice configs "
      "(%zu unique models): %zu error(s)\n",
      all.size(), unique, errors);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    if (args.has("plan")) {
      if (args.get_flag("sweep", false)) return sweep_plans();
      // `--plan model.dcnx` parses as --plan with value "model.dcnx".
      const std::string plan_value = args.get("plan", "true");
      std::string subject;
      graph::GraphExecutor exec = [&] {
        if (args.has("config")) {
          const nas::TrialConfig cfg = parse_config_key(args.get("config", ""));
          subject = "search-space config " + cfg.lattice_key();
          return executor_for_config(cfg);
        }
        std::string path = plan_value;
        if (plan_value == "true" || plan_value == "1") {
          DCNAS_CHECK(!args.positional().empty(),
                      "usage: dcnas_lint --plan <model.dcnx> | --plan "
                      "--config <lattice key> | --plan --sweep");
          path = args.positional().front();
        }
        subject = path;
        return graph::load_model(path);
      }();
      return lint_plan(exec, subject, /*verbose=*/true) == 0 ? 0 : 1;
    }

    std::string subject;
    const graph::ModelGraph g = load_graph(args, subject);
    const analysis::GraphVerifier verifier =
        analysis::GraphVerifier::standard();
    const analysis::VerifyResult result = verifier.verify(g);

    std::printf("dcnas_lint: %s\n", subject.c_str());
    std::printf("  %zu nodes, %lld params, %lld FLOPs\n", g.size(),
                static_cast<long long>(g.total_params()),
                static_cast<long long>(g.total_flops()));
    for (const auto& name : verifier.pass_names()) {
      std::printf("  pass: %s\n", name.c_str());
    }
    if (result.diagnostics.empty()) {
      std::printf("clean: no diagnostics\n");
      return 0;
    }
    std::printf("%s", result.to_string().c_str());
    std::printf("%zu error(s), %zu warning(s)\n", result.error_count(),
                result.warning_count());
    return result.ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "dcnas_lint: %s\n", e.what());
    return 2;
  }
}
