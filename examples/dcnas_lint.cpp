/// dcnas_lint: static analysis of a model graph from the command line.
///
/// Two input modes:
///   ./examples/dcnas_lint model.dcnx            lint a serialized artifact
///   ./examples/dcnas_lint --config <key>        lint a search-space point,
///                                               e.g. --config ch5_k3_s1_p1
///                                               fields: chN kN sN pN poolN
///                                               pkN psN wN (any order,
///                                               missing fields keep the
///                                               Table-4 anchor defaults)
///
/// Prints every diagnostic of the standard verifier pipeline (errors and
/// warnings) and exits 1 when the graph has errors, 0 when clean — so CI
/// can lint .dcnx artifacts the way clang-tidy lints the sources. Unlike
/// parse_model (which rejects at the first failed verification), the lint
/// path parses the file verbatim and reports *all* findings.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dcnas/analysis/verifier.hpp"
#include "dcnas/common/cli.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/search_space.hpp"

using namespace dcnas;

namespace {

/// Parses "ch5_k3_s1_p1_pool0_pk2_ps2_w64"-style keys (the lattice_key()
/// vocabulary) into a TrialConfig; unknown fields are rejected.
nas::TrialConfig parse_config_key(const std::string& key) {
  nas::TrialConfig cfg;
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t end = key.find('_', pos);
    if (end == std::string::npos) end = key.size();
    const std::string field = key.substr(pos, end - pos);
    pos = end + 1;
    auto value_after = [&](std::size_t prefix_len) {
      return std::stoi(field.substr(prefix_len));
    };
    if (field.rfind("ch", 0) == 0) {
      cfg.channels = value_after(2);
    } else if (field.rfind("pool", 0) == 0) {
      cfg.pool_choice = value_after(4);
    } else if (field.rfind("pk", 0) == 0) {
      cfg.kernel_size_pool = value_after(2);
    } else if (field.rfind("ps", 0) == 0) {
      cfg.stride_pool = value_after(2);
    } else if (field.rfind('b', 0) == 0) {
      cfg.batch = value_after(1);
    } else if (field.rfind('k', 0) == 0) {
      cfg.kernel_size = value_after(1);
    } else if (field.rfind('s', 0) == 0) {
      cfg.stride = value_after(1);
    } else if (field.rfind('p', 0) == 0) {
      cfg.padding = value_after(1);
    } else if (field.rfind('w', 0) == 0) {
      cfg.initial_output_feature = value_after(1);
    } else {
      throw InvalidArgument("unknown config field '" + field + "' in --config");
    }
  }
  return cfg;
}

graph::ModelGraph load_graph(const CliArgs& args, std::string& subject) {
  if (args.has("config")) {
    const nas::TrialConfig cfg = parse_config_key(args.get("config", ""));
    subject = "search-space config " + cfg.lattice_key();
    return graph::build_resnet_graph(cfg.to_resnet_config());
  }
  DCNAS_CHECK(!args.positional().empty(),
              "usage: dcnas_lint <model.dcnx> | --config <lattice key>");
  const std::string& path = args.positional().front();
  subject = path;
  std::ifstream in(path, std::ios::binary);
  DCNAS_CHECK(in.good(), "cannot open model file: " + path);
  const std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return graph::parse_model_graph(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    std::string subject;
    const graph::ModelGraph g = load_graph(args, subject);
    const analysis::GraphVerifier verifier =
        analysis::GraphVerifier::standard();
    const analysis::VerifyResult result = verifier.verify(g);

    std::printf("dcnas_lint: %s\n", subject.c_str());
    std::printf("  %zu nodes, %lld params, %lld FLOPs\n", g.size(),
                static_cast<long long>(g.total_params()),
                static_cast<long long>(g.total_flops()));
    for (const auto& name : verifier.pass_names()) {
      std::printf("  pass: %s\n", name.c_str());
    }
    if (result.diagnostics.empty()) {
      std::printf("clean: no diagnostics\n");
      return 0;
    }
    std::printf("%s", result.to_string().c_str());
    std::printf("%zu error(s), %zu warning(s)\n", result.error_count(),
                result.warning_count());
    return result.ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "dcnas_lint: %s\n", e.what());
    return 2;
  }
}
