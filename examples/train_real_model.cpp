/// Real training, no surrogate: builds the synthetic drainage-crossing
/// dataset, trains the paper's winning architecture and the stock
/// ResNet-18 with genuine gradient descent + k-fold cross-validation, and
/// compares. This is the paper's NNI protocol at laptop scale (the full
/// 12,068-chip corpus at 5 epochs x 1,728 trials is the 38-GPU-hour run
/// the oracle replaces).
///
/// Usage: ./examples/train_real_model [--scale-denominator 100]
///          [--chip 16] [--epochs 8] [--folds 2] [--channels 5]

#include <cstdio>

#include "dcnas/common/cli.hpp"
#include "dcnas/nas/evaluator.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double denom = args.get_double("scale-denominator", 100.0);
  const auto chip = args.get_int("chip", 16);
  const auto epochs = static_cast<int>(args.get_int("epochs", 8));
  const auto folds = static_cast<int>(args.get_int("folds", 2));
  const int channels = static_cast<int>(args.get_int("channels", 5));

  std::printf("=== real training on synthetic drainage data ===\n");
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / denom;
  dopt.chip_size = chip;
  dopt.scene_size = 128;
  dopt.seed = 5;
  dopt.channels = 5;
  const auto ds5 = geodata::build_dataset(dopt);
  dopt.channels = 7;
  const auto ds7 = geodata::build_dataset(dopt);
  std::printf("dataset: %lld chips of %lldx%lld (scale 1/%.0f of Table 1)\n",
              static_cast<long long>(ds5.size()),
              static_cast<long long>(chip), static_cast<long long>(chip),
              denom);
  for (const auto& r : ds5.per_region) {
    std::printf("  %-14s %lld true / %lld false\n", r.name.c_str(),
                static_cast<long long>(r.true_chips),
                static_cast<long long>(r.false_chips));
  }

  nas::TrainingEvaluator::Options topt;
  topt.folds = folds;
  topt.epochs = epochs;
  topt.lr = 0.02;
  nas::TrainingEvaluator trainer(ds5, ds7, topt);

  nas::TrialConfig winner = nas::TrialConfig::baseline(channels, 8);
  winner.initial_output_feature = 32;
  winner.kernel_size = 3;
  winner.padding = 1;
  const nas::TrialConfig baseline = nas::TrialConfig::baseline(channels, 8);

  std::printf("\ntraining the Table-4 winner (w32/k3/p1, pooled), %d epochs "
              "x %d folds...\n", epochs, folds);
  const auto w = trainer.evaluate(winner);
  std::printf("  winner accuracy: %.2f%% (folds:", w.mean_accuracy);
  for (double f : w.fold_accuracies) std::printf(" %.2f", f);

  std::printf(")\n\ntraining stock ResNet-18 (w64/k7/p3)...\n");
  const auto b = trainer.evaluate(baseline);
  std::printf("  baseline accuracy: %.2f%% (folds:", b.mean_accuracy);
  for (double f : b.fold_accuracies) std::printf(" %.2f", f);

  std::printf(")\n\nsummary: winner %+.2f accuracy points vs baseline with "
              "~4x fewer parameters —\nthe paper's core observation that "
              "narrow ResNets suffice for this task.\n",
              w.mean_accuracy - b.mean_accuracy);
  return 0;
}
