/// Deployment advisor: given a target device and resource budget, sweep
/// the search space and recommend the most accurate model that fits — the
/// practical workflow the paper motivates for edge/IoT deployments.
///
/// Usage: ./examples/edge_deployment_advisor
///          [--device cortexA76cpu|adreno640gpu|adreno630gpu|myriadvpu|mean]
///          [--max-latency-ms 12] [--max-memory-mb 20] [--top 5]

#include <algorithm>
#include <cstdio>
#include <string>

#include "dcnas/common/cli.hpp"
#include "dcnas/core/pipeline.hpp"

using namespace dcnas;

namespace {

double device_latency(const nas::TrialRecord& r, const std::string& device) {
  if (device == "mean") return r.latency_ms;
  for (const auto& [name, ms] : r.per_device_ms) {
    if (name == device) return ms;
  }
  throw InvalidArgument("unknown device: " + device +
                        " (try cortexA76cpu, adreno640gpu, adreno630gpu, "
                        "myriadvpu, or mean)");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string device = args.get("device", "myriadvpu");
  const double max_latency = args.get_double("max-latency-ms", 20.0);
  const double max_memory = args.get_double("max-memory-mb", 20.0);
  const auto top = static_cast<std::size_t>(args.get_int("top", 5));

  std::printf("=== edge deployment advisor ===\n");
  std::printf("device=%s, latency budget %.1f ms, memory budget %.1f MB\n\n",
              device.c_str(), max_latency, max_memory);

  core::HwNasPipeline pipeline;
  const core::SweepResult sweep = pipeline.run_full_sweep();

  // Filter to the budget, rank by accuracy.
  std::vector<std::size_t> fits;
  for (std::size_t i = 0; i < sweep.trials.size(); ++i) {
    const auto& r = sweep.trials.record(i);
    if (device_latency(r, device) <= max_latency &&
        r.memory_mb <= max_memory) {
      fits.push_back(i);
    }
  }
  if (fits.empty()) {
    std::printf("no configuration fits this budget — the closest candidates "
                "are on the Pareto front:\n");
    fits = sweep.front_indices;
  }
  std::sort(fits.begin(), fits.end(), [&](std::size_t a, std::size_t b) {
    return sweep.trials.record(a).accuracy > sweep.trials.record(b).accuracy;
  });
  fits.resize(std::min(top, fits.size()));

  std::printf("%-58s %8s %10s %8s\n", "configuration", "acc(%)",
              "latency(ms)", "mem(MB)");
  for (std::size_t i : fits) {
    const auto& r = sweep.trials.record(i);
    std::printf("%-58s %8.2f %10.2f %8.2f\n", r.config.to_string().c_str(),
                r.accuracy, device_latency(r, device), r.memory_mb);
  }

  if (!fits.empty()) {
    const auto& rec = sweep.trials.record(fits.front());
    std::printf("\nrecommended: %s\n", rec.config.to_string().c_str());
    std::printf("per-device latency:\n");
    for (const auto& [name, ms] : rec.per_device_ms) {
      std::printf("  %-14s %7.2f ms%s\n", name.c_str(), ms,
                  name == device ? "  <- target" : "");
    }
  }
  return 0;
}
