/// Latency explorer: kernel-level view of where a model's time goes on
/// each edge device — the nn-Meter decomposition made visible. Shows the
/// fused kernel sequence, per-kernel simulated vs predicted latency, and
/// how the no-pool variant shifts the profile.
///
/// Usage: ./examples/latency_explorer [--width 32] [--kernel 3]
///          [--no-pool] [--device cortexA76cpu]

#include <cstdio>
#include <string>

#include "dcnas/common/cli.hpp"
#include "dcnas/latency/predictor.hpp"
#include "dcnas/latency/simulator.hpp"
#include "dcnas/nas/search_space.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  nas::TrialConfig config = nas::TrialConfig::baseline(7, 16);
  config.initial_output_feature =
      static_cast<int>(args.get_int("width", 32));
  config.kernel_size = static_cast<int>(args.get_int("kernel", 3));
  config.padding = config.kernel_size == 3 ? 1 : 3;
  if (args.get_flag("no-pool")) config.pool_choice = 1;
  const std::string device_name = args.get("device", "cortexA76cpu");

  const auto& device = latency::device_by_name(device_name);
  const auto& predictor = latency::NnMeter::shared().predictor(device_name);

  const auto g = graph::build_resnet_graph(config.to_resnet_config());
  const auto kernels = graph::fuse_graph(g);

  std::printf("=== latency explorer: %s on %s (%s) ===\n\n",
              config.to_string().c_str(), device.name.c_str(),
              device.processor.c_str());
  std::printf("%-22s %-14s %-18s %9s %10s %10s\n", "kernel", "type", "shape",
              "MFLOPs", "sim(ms)", "pred(ms)");
  double sim_total = 0.0, pred_total = 0.0;
  for (const auto& k : kernels) {
    const double sim = latency::simulate_kernel_ms(device, k);
    const double pred = predictor.predict_kernel_ms(k);
    sim_total += sim;
    pred_total += pred;
    std::printf("%-22s %-14s %-18s %9.1f %10.3f %10.3f\n", k.name.c_str(),
                graph::kernel_kind_name(k.kind),
                (k.in_shape.to_string() + "->" +
                 std::to_string(k.out_shape.c))
                    .c_str(),
                static_cast<double>(k.flops) / 1e6, sim, pred);
  }
  std::printf("%-56s %9s %10.3f %10.3f\n", "TOTAL", "", sim_total, pred_total);
  std::printf("\nprediction error: %+.1f%%\n",
              100.0 * (pred_total - sim_total) / sim_total);

  std::printf("\nall devices (model level):\n");
  const auto all = latency::NnMeter::shared().predict_kernels(kernels);
  for (const auto& [name, ms] : all.per_device_ms) {
    const double sim =
        latency::simulate_model_ms(latency::device_by_name(name), kernels);
    std::printf("  %-14s predicted %8.2f ms   simulated %8.2f ms\n",
                name.c_str(), ms, sim);
  }
  std::printf("  mean %.2f ms  std %.2f ms  (Table 4/5's latency & lat_std "
              "columns)\n",
              all.mean_ms, all.std_ms);
  return 0;
}
