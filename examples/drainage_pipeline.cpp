/// The paper, end to end: synthesize the four study regions' data, run the
/// hardware-aware NAS sweep, predict latency on the four edge devices,
/// and extract the Pareto front — printing every table/figure on the way.
///
/// Usage: ./examples/drainage_pipeline [--trials N] [--out-dir DIR]
///                                     [--threads N] [--journal PATH]
///                                     [--prune]
///   --trials N   subsample the 1,728-point lattice (default: full sweep)
///   --out-dir    where to write fig3_scatter.csv / fig4_radar.csv /
///                trials.csv (default: current directory)
///   --threads N  run the sweep through the parallel trial scheduler on N
///                threads (0 = all cores); byte-identical trials.csv to the
///                serial default
///   --journal    crash-safe resume journal; re-running after an interrupt
///                skips already-evaluated trials (implies the scheduler)
///   --prune      median-stop fold pruning (saves fold evaluations but
///                drops pruned trials from the artifacts; off for paper
///                reproduction)

#include <cstdio>
#include <string>

#include "dcnas/common/cli.hpp"
#include "dcnas/common/profiler.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const long long trials = args.get_int("trials", 0);
  const std::string out_dir = args.get(std::string("out-dir"), ".");
  const long long threads = args.get_int("threads", -1);
  const std::string journal = args.get(std::string("journal"), "");
  const bool prune = args.get_flag("prune");

  std::printf("=== dcnas drainage-crossing HW-NAS pipeline ===\n\n");
  std::printf("%s\n", core::table1_text().c_str());
  std::printf("%s\n", core::fig1_text().c_str());
  std::printf("%s\n", core::fig2_text().c_str());

  std::printf("training nn-Meter predictors (4 devices)...\n");
  std::printf("%s\n", core::table2_text(latency::NnMeter::shared()).c_str());

  core::PipelineOptions options;
  if (threads >= 0 || !journal.empty() || prune) {
    options.use_scheduler = true;
    options.scheduler.threads =
        threads > 0 ? static_cast<std::size_t>(threads) : 0;
    options.scheduler.journal_path = journal;
    options.scheduler.pruner.enabled = prune;
    options.scheduler.log_progress = true;
  }
  core::HwNasPipeline pipeline(options);
  std::vector<nas::TrialConfig> configs = nas::SearchSpace::enumerate_all();
  if (trials > 0 && trials < static_cast<long long>(configs.size())) {
    Rng rng(7);
    rng.shuffle(configs);
    configs.resize(static_cast<std::size_t>(trials));
    std::printf("running a %lld-trial subsample of the lattice...\n\n", trials);
  } else {
    std::printf("running the full %zu-trial lattice...\n\n", configs.size());
  }
  const core::SweepResult sweep = pipeline.run_sweep(configs);

  std::printf("%s\n", core::table3_text(sweep).c_str());
  std::printf("%s\n", core::table4_text(sweep).c_str());
  std::printf("%s\n", core::fig3_text(sweep).c_str());
  std::printf("%s\n", core::fig4_text(sweep).c_str());

  const auto baselines = pipeline.run_baselines();
  std::printf("%s\n", core::table5_text(baselines).c_str());

  // Persist artifacts.
  sweep.trials.save(out_dir + "/trials.csv");
  pareto::scatter_csv(sweep.objectives, sweep.front_indices)
      .save(out_dir + "/fig3_scatter.csv");
  pareto::radar_csv(core::fig4_rows(sweep)).save(out_dir + "/fig4_radar.csv");
  std::printf("artifacts written: %s/trials.csv, fig3_scatter.csv, "
              "fig4_radar.csv\n",
              out_dir.c_str());
  std::printf("\nphase profile (the Nsight-style accounting §5 suggests):\n%s",
              Profiler::global().report().c_str());
  return 0;
}
