/// The paper, end to end: synthesize the four study regions' data, run the
/// hardware-aware NAS sweep, predict latency on the four edge devices,
/// and extract the Pareto front — printing every table/figure on the way.
///
/// Usage: ./examples/drainage_pipeline [--trials N] [--out-dir DIR]
///                                     [--threads N] [--journal PATH]
///                                     [--prune] [--store DIR] [--workers N]
///                                     [--wide] [--smoke]
///   --trials N   subsample the 1,728-point lattice (default: full sweep)
///   --out-dir    where to write fig3_scatter.csv / fig4_radar.csv /
///                trials.csv (default: current directory)
///   --threads N  run the sweep through the parallel trial scheduler on N
///                threads (0 = all cores); byte-identical trials.csv to the
///                serial default
///   --journal    crash-safe resume journal; re-running after an interrupt
///                skips already-evaluated trials (implies the scheduler)
///   --prune      median-stop fold pruning (saves fold evaluations but
///                drops pruned trials from the artifacts; off for paper
///                reproduction)
///   --store DIR  memory-mapped trial store directory: sweeps stream
///                through the store (crash/resume safe, multi-process
///                capable) instead of holding everything in memory
///   --workers N  with --store: fork N worker processes sharing the store
///                (default 1 = single-process streamed run)
///   --wide       with --store: sweep the 138,240-point wide lattice
///                (SearchSpaceSpec::wide) instead of the paper's 1,728
///   --smoke      with --wide: deterministic 1-in-128 stride subsample of
///                the wide lattice (950 buildable trials — the CI-sized
///                sweep)

#include <cstdio>
#include <filesystem>
#include <string>

#include "dcnas/common/cli.hpp"
#include "dcnas/common/profiler.hpp"
#include "dcnas/common/rng.hpp"
#include "dcnas/core/report.hpp"

using namespace dcnas;

namespace {

/// --smoke thins every option list is *not* what we want (it would change
/// the lattice identity); instead the smoke sweep keeps the wide spec and
/// strides over it, so the store fingerprint — and any resumed records —
/// stay valid for the full sweep later.
std::vector<nas::TrialConfig> stride_sample(const nas::SearchSpaceSpec& spec,
                                            std::int64_t stride) {
  std::vector<nas::TrialConfig> out;
  for (std::int64_t i = 0; i < spec.size(); i += stride) {
    nas::TrialConfig c = spec.at(i);
    if (!c.geometry_ok()) continue;  // LatticeStream applies the same skip
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const long long trials = args.get_int("trials", 0);
  const std::string out_dir = args.get(std::string("out-dir"), ".");
  const long long threads = args.get_int("threads", -1);
  const std::string journal = args.get(std::string("journal"), "");
  const bool prune = args.get_flag("prune");
  const std::string store_dir = args.get(std::string("store"), "");
  const long long workers = args.get_int("workers", 1);
  const bool wide = args.get_flag("wide");
  const bool smoke = args.get_flag("smoke");

  std::printf("=== dcnas drainage-crossing HW-NAS pipeline ===\n\n");
  std::printf("%s\n", core::table1_text().c_str());
  std::printf("%s\n", core::fig1_text().c_str());
  std::printf("%s\n", core::fig2_text().c_str());

  std::printf("training nn-Meter predictors (4 devices)...\n");
  std::printf("%s\n", core::table2_text(latency::NnMeter::shared()).c_str());

  core::PipelineOptions options;
  if (threads >= 0 || !journal.empty() || prune || !store_dir.empty()) {
    options.use_scheduler = true;
    options.scheduler.threads =
        threads > 0 ? static_cast<std::size_t>(threads) : 0;
    options.scheduler.journal_path = journal;
    options.scheduler.pruner.enabled = prune;
    options.scheduler.log_progress = true;
  }
  core::HwNasPipeline pipeline(options);

  const nas::SearchSpaceSpec spec =
      wide ? nas::SearchSpaceSpec::wide() : nas::SearchSpaceSpec::paper();
  core::SweepResult sweep;
  if (!store_dir.empty() && smoke) {
    // CI-sized wide-lattice pass: stride subsample, one process, results
    // committed to (and resumable from) the same store as the full sweep.
    options.scheduler.store_dir = store_dir;
    options.scheduler.store_fingerprint = spec.fingerprint();
    core::HwNasPipeline smoke_pipeline(options);
    const auto configs = stride_sample(spec, 128);
    std::printf("running a %zu-trial smoke stride of the %lld-point lattice "
                "through store %s...\n\n",
                configs.size(), static_cast<long long>(spec.size()),
                store_dir.c_str());
    sweep = smoke_pipeline.run_sweep(configs);
  } else if (!store_dir.empty()) {
    std::printf("running the %lld-point lattice through store %s with %lld "
                "worker process(es)...\n\n",
                static_cast<long long>(spec.size()), store_dir.c_str(),
                workers);
    sweep = pipeline.run_store_sweep(spec, store_dir,
                                     static_cast<int>(workers));
  } else {
    std::vector<nas::TrialConfig> configs = spec.enumerate();
    if (trials > 0 && trials < static_cast<long long>(configs.size())) {
      Rng rng(7);
      rng.shuffle(configs);
      configs.resize(static_cast<std::size_t>(trials));
      std::printf("running a %lld-trial subsample of the lattice...\n\n",
                  trials);
    } else {
      std::printf("running the full %zu-trial lattice...\n\n", configs.size());
    }
    sweep = pipeline.run_sweep(configs);
  }

  std::printf("%s\n", core::table3_text(sweep).c_str());
  std::printf("%s\n", core::table4_text(sweep).c_str());
  std::printf("%s\n", core::fig3_text(sweep).c_str());
  std::printf("%s\n", core::fig4_text(sweep).c_str());

  const auto baselines = pipeline.run_baselines();
  std::printf("%s\n", core::table5_text(baselines).c_str());

  // Persist artifacts.
  std::filesystem::create_directories(out_dir);
  sweep.trials.save(out_dir + "/trials.csv");
  pareto::scatter_csv(sweep.objectives, sweep.front_indices)
      .save(out_dir + "/fig3_scatter.csv");
  pareto::radar_csv(core::fig4_rows(sweep)).save(out_dir + "/fig4_radar.csv");
  std::printf("artifacts written: %s/trials.csv, fig3_scatter.csv, "
              "fig4_radar.csv\n",
              out_dir.c_str());
  std::printf("\nphase profile (the Nsight-style accounting §5 suggests):\n%s",
              Profiler::global().report().c_str());
  return 0;
}
