/// Quickstart: the five-minute tour of dcnas.
///
/// 1. Pick an architecture from the paper's search space.
/// 2. Inspect it (layers, parameters, serialized size).
/// 3. Predict its inference latency on the four edge devices (nn-Meter
///    style: fused kernels -> per-kernel random-forest predictors).
/// 4. Score it with the calibrated accuracy oracle (5-fold CV surrogate).
///
/// Build & run:  ./examples/quickstart [--channels 7] [--batch 16]

#include <cstdio>

#include "dcnas/common/cli.hpp"
#include "dcnas/graph/serialize.hpp"
#include "dcnas/nas/experiment.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int channels = static_cast<int>(args.get_int("channels", 7));
  const int batch = static_cast<int>(args.get_int("batch", 16));

  // The paper's best model (Table 4, row 1): width-32 ResNet-18 with a
  // 3x3 stride-2 stem and max pooling.
  nas::TrialConfig config = nas::TrialConfig::baseline(channels, batch);
  config.initial_output_feature = 32;
  config.kernel_size = 3;
  config.padding = 1;
  std::printf("== dcnas quickstart ==\n%s\n\n", config.to_string().c_str());

  // 2. Live model + IR graph.
  Rng rng(1);
  nn::ConfigurableResNet model(config.to_resnet_config(), rng);
  std::printf("%s", model.summary(graph::kDeploymentInputSize).c_str());
  const graph::ModelGraph g = graph::build_resnet_graph(config.to_resnet_config());
  std::printf("  parameters: %lld (model file %.2f MB, %.2f GFLOPs)\n\n",
              static_cast<long long>(model.num_params()),
              graph::model_memory_mb(g),
              static_cast<double>(g.total_flops()) / 1e9);

  // 3. Latency across the four predictors.
  const auto pred = latency::NnMeter::shared().predict_graph(g);
  std::printf("predicted inference latency at %lldx%lld:\n",
              static_cast<long long>(graph::kDeploymentInputSize),
              static_cast<long long>(graph::kDeploymentInputSize));
  for (const auto& [device, ms] : pred.per_device_ms) {
    std::printf("  %-14s %7.2f ms\n", device.c_str(), ms);
  }
  std::printf("  mean %.2f ms, std %.2f ms\n\n", pred.mean_ms, pred.std_ms);

  // 4. Accuracy via the calibrated oracle (full training is available via
  //    nas::TrainingEvaluator — see examples/train_real_model.cpp).
  nas::OracleEvaluator oracle;
  const nas::EvalResult acc = oracle.evaluate(config);
  std::printf("oracle 5-fold accuracy: %.2f%% (folds:", acc.mean_accuracy);
  for (double f : acc.fold_accuracies) std::printf(" %.2f", f);
  std::printf(")\n\nCompare with stock ResNet-18 (Table 5 row):\n");
  nas::OracleEvaluator oracle2;
  const nas::Experiment exp(oracle2, latency::NnMeter::shared());
  const auto base = exp.run_trial(nas::TrialConfig::baseline(channels, batch));
  std::printf("  baseline: acc %.2f%%, latency %.2f ms, memory %.2f MB\n",
              base.accuracy, base.latency_ms, base.memory_mb);
  const auto ours = exp.run_trial(config);
  std::printf("  searched: acc %.2f%%, latency %.2f ms, memory %.2f MB\n",
              ours.accuracy, ours.latency_ms, ours.memory_mb);
  std::printf("  -> %.1fx faster, %.1fx smaller, accuracy %+.2f points\n",
              base.latency_ms / ours.latency_ms,
              base.memory_mb / ours.memory_mb, ours.accuracy - base.accuracy);
  return 0;
}
