/// Observability walkthrough: run a miniature version of the full pipeline —
/// NAS trials (oracle accuracy + nn-Meter latency), one real training run,
/// and a batched serving session — with tracing enabled, then export the
/// timeline as Chrome-trace JSON and the metrics registries as JSON.
///
/// Load trace.json in ui.perfetto.dev (or chrome://tracing) to see nas/nn/
/// serve/graph/latency spans nested per thread. metrics.json holds the
/// process-wide registry ("process") plus the server's per-model registry
/// ("serving"). See OBSERVABILITY.md for the span taxonomy.
///
/// Usage: ./examples/dcnas_trace [--trials 8] [--requests 32]
///                               [--trace-out trace.json]
///                               [--metrics-out metrics.json]

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "dcnas/common/cli.hpp"
#include "dcnas/geodata/dataset.hpp"
#include "dcnas/graph/builder.hpp"
#include "dcnas/graph/model_file.hpp"
#include "dcnas/nas/evaluator.hpp"
#include "dcnas/nas/experiment.hpp"
#include "dcnas/nas/search_space.hpp"
#include "dcnas/nn/trainer.hpp"
#include "dcnas/obs/metrics.hpp"
#include "dcnas/obs/trace.hpp"
#include "dcnas/obs/trace_export.hpp"
#include "dcnas/serve/server.hpp"

using namespace dcnas;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t trials = args.get_int("trials", 8);
  const int requests = static_cast<int>(args.get_int("requests", 32));
  const std::string trace_out = args.get("trace-out", "trace.json");
  const std::string metrics_out = args.get("metrics-out", "metrics.json");

  obs::TraceRecorder::global().enable();
  std::printf("=== dcnas_trace: traced NAS -> train -> serve pipeline ===\n");

  // 1. NAS trials: oracle accuracy + hardware objectives through a small
  //    nn-Meter (fewer samples/trees than production — this is a demo).
  latency::PredictorTrainOptions popt;
  popt.samples_per_kind = 60;
  popt.forest.num_trees = 8;
  const latency::NnMeter meter(popt);
  nas::OracleOptions oopt;
  nas::OracleEvaluator evaluator(oopt);
  nas::Experiment experiment(evaluator, meter, {});
  std::vector<nas::TrialConfig> configs =
      nas::SearchSpace::enumerate_architectures(5, 8);
  if (static_cast<std::int64_t>(configs.size()) > trials) {
    configs.resize(static_cast<std::size_t>(trials));
  }
  const nas::TrialDatabase db = experiment.run_all(configs);
  std::printf("nas: %zu trials, best accuracy %.2f%%\n", db.size(),
              db.best_accuracy().accuracy);

  // 2. One real (tiny) training run so nn.fit/nn.epoch/nn.batch spans show
  //    actual SGD work rather than the oracle shortcut.
  geodata::DatasetOptions dopt;
  dopt.scale = 1.0 / 128.0;
  dopt.chip_size = 24;
  dopt.scene_size = 160;
  dopt.channels = 5;
  const auto ds = geodata::build_dataset(dopt);
  nas::TrialConfig cfg = nas::TrialConfig::baseline(5, 8);
  cfg.initial_output_feature = 32;
  Rng rng(7);
  nn::ConfigurableResNet model(cfg.to_resnet_config(), rng);
  nn::TrainOptions topt;
  topt.epochs = 1;
  topt.batch_size = cfg.batch;
  nn::fit(model, ds.images, ds.labels, topt);
  const double acc = nn::evaluate_accuracy(model, ds.images, ds.labels);
  std::printf("nn: 1-epoch fit, train accuracy %.3f\n", acc);

  // 3. Batched serving session over the trained model: serve.admit /
  //    serve.batch.merge / serve.batch.execute / graph.execute spans.
  model.set_training(false);
  graph::GraphExecutor exec(
      graph::build_resnet_graph(cfg.to_resnet_config(), dopt.chip_size),
      model);
  exec.fold_batchnorm();
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->register_model("drainage", std::move(exec));
  serve::ServerOptions sopt;
  sopt.num_workers = 2;
  sopt.batch.max_batch = 8;
  sopt.batch.max_delay = std::chrono::microseconds(500);
  serve::Server server(registry, sopt);
  Rng request_rng(99);
  std::vector<std::future<Tensor>> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    futures.push_back(server.submit(
        "drainage", Tensor::rand_uniform({1, 5, dopt.chip_size, dopt.chip_size},
                                         request_rng, -1.0f, 1.0f)));
  }
  for (auto& f : futures) f.get();
  server.shutdown();
  std::printf("serve: %d requests answered\n%s", requests,
              server.stats_report().c_str());

  // 4. Export: Chrome-trace timeline + both metrics registries.
  obs::TraceRecorder::global().disable();
  const auto events = obs::TraceRecorder::global().snapshot();
  obs::write_chrome_trace(trace_out, events);
  std::set<std::string> categories;
  for (const auto& e : events) categories.insert(e.category);
  std::string cats;
  for (const auto& c : categories) {
    if (!cats.empty()) cats += ", ";
    cats += c;
  }
  std::printf("\ntrace: %zu spans, %zu categories (%s), %zu threads, "
              "%llu dropped -> %s\n",
              events.size(), categories.size(), cats.c_str(),
              obs::TraceRecorder::global().thread_count(),
              static_cast<unsigned long long>(
                  obs::TraceRecorder::global().dropped_count()),
              trace_out.c_str());

  const std::string json = "{\"process\": " +
                           obs::MetricsRegistry::global().to_json() +
                           ", \"serving\": " +
                           server.metrics().registry().to_json() + "}\n";
  std::FILE* f = std::fopen(metrics_out.c_str(), "w");
  DCNAS_CHECK(f != nullptr, "cannot open " + metrics_out);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("metrics: process + serving registries -> %s\n",
              metrics_out.c_str());
  std::printf("\nprocess metrics snapshot:\n%s",
              obs::MetricsRegistry::global().to_text().c_str());
  return 0;
}
